package algebra

import (
	"fmt"

	"dwcomplement/internal/relation"
)

// Cond is a selection condition: comparisons between attributes and
// constants combined with and/or/not, as used by the paper's
// selection–projection–join views.
type Cond interface {
	isCond()
	// String renders the condition in the DSL syntax (re-parseable).
	String() string
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the DSL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary operator (= ↔ !=, < ↔ >=, ...).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		return op
	}
}

// Operand is one side of a comparison: either an attribute reference or a
// constant value.
type Operand struct {
	IsAttr bool
	Attr   string
	Val    relation.Value
}

// AttrOperand returns an attribute-reference operand.
func AttrOperand(name string) Operand { return Operand{IsAttr: true, Attr: name} }

// ConstOperand returns a constant operand.
func ConstOperand(v relation.Value) Operand { return Operand{Val: v} }

// String renders the operand: attribute name, or value literal.
func (o Operand) String() string {
	if o.IsAttr {
		return o.Attr
	}
	return o.Val.Literal()
}

// equal reports operand equality.
func (o Operand) equal(p Operand) bool {
	if o.IsAttr != p.IsAttr {
		return false
	}
	if o.IsAttr {
		return o.Attr == p.Attr
	}
	return o.Val.Equal(p.Val) && o.Val.Kind() == p.Val.Kind()
}

// True is the always-true condition (σ_true is the identity).
type True struct{}

// Cmp is the comparison Left Op Right.
type Cmp struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// And is the conjunction L ∧ R.
type And struct {
	L, R Cond
}

// Or is the disjunction L ∨ R.
type Or struct {
	L, R Cond
}

// Not is the negation ¬C.
type Not struct {
	C Cond
}

func (True) isCond() {}
func (*Cmp) isCond() {}
func (*And) isCond() {}
func (*Or) isCond()  {}
func (*Not) isCond() {}

// Convenience constructors used pervasively by the complement algorithms.

// AttrEqConst returns the condition attr = value.
func AttrEqConst(attr string, v relation.Value) *Cmp {
	return &Cmp{Left: AttrOperand(attr), Op: OpEq, Right: ConstOperand(v)}
}

// AttrCmpConst returns the condition attr op value.
func AttrCmpConst(attr string, op CmpOp, v relation.Value) *Cmp {
	return &Cmp{Left: AttrOperand(attr), Op: op, Right: ConstOperand(v)}
}

// AttrCmpAttr returns the condition a op b over two attributes.
func AttrCmpAttr(a string, op CmpOp, b string) *Cmp {
	return &Cmp{Left: AttrOperand(a), Op: op, Right: AttrOperand(b)}
}

// AndAll folds conditions into a conjunction; with no arguments it returns
// True.
func AndAll(conds ...Cond) Cond {
	var out Cond = True{}
	for _, c := range conds {
		if _, isTrue := c.(True); isTrue {
			continue
		}
		if _, isTrue := out.(True); isTrue {
			out = c
		} else {
			out = &And{L: out, R: c}
		}
	}
	return out
}

// Conjuncts flattens a condition into its top-level conjuncts; True
// flattens to none. Disjunctions and negations stay as single conjuncts.
func Conjuncts(c Cond) []Cond {
	switch n := c.(type) {
	case True:
		return nil
	case *And:
		return append(Conjuncts(n.L), Conjuncts(n.R)...)
	default:
		return []Cond{c}
	}
}

// CloneCond returns a deep copy of the condition.
func CloneCond(c Cond) Cond {
	switch n := c.(type) {
	case True:
		return True{}
	case *Cmp:
		cp := *n
		return &cp
	case *And:
		return &And{L: CloneCond(n.L), R: CloneCond(n.R)}
	case *Or:
		return &Or{L: CloneCond(n.L), R: CloneCond(n.R)}
	case *Not:
		return &Not{C: CloneCond(n.C)}
	default:
		panic(fmt.Sprintf("algebra: unknown condition %T", c))
	}
}

// CondEqual reports structural equality of conditions.
func CondEqual(a, b Cond) bool {
	switch x := a.(type) {
	case True:
		_, ok := b.(True)
		return ok
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && x.Left.equal(y.Left) && x.Right.equal(y.Right)
	case *And:
		y, ok := b.(*And)
		return ok && CondEqual(x.L, y.L) && CondEqual(x.R, y.R)
	case *Or:
		y, ok := b.(*Or)
		return ok && CondEqual(x.L, y.L) && CondEqual(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && CondEqual(x.C, y.C)
	default:
		panic(fmt.Sprintf("algebra: unknown condition %T", a))
	}
}

// CondAttrs returns the set of attributes referenced by the condition.
func CondAttrs(c Cond) relation.AttrSet {
	out := relation.NewAttrSet()
	var walk func(Cond)
	walk = func(c Cond) {
		switch n := c.(type) {
		case True:
		case *Cmp:
			if n.Left.IsAttr {
				out[n.Left.Attr] = struct{}{}
			}
			if n.Right.IsAttr {
				out[n.Right.Attr] = struct{}{}
			}
		case *And:
			walk(n.L)
			walk(n.R)
		case *Or:
			walk(n.L)
			walk(n.R)
		case *Not:
			walk(n.C)
		default:
			panic(fmt.Sprintf("algebra: unknown condition %T", c))
		}
	}
	walk(c)
	return out
}

// IsTrivial reports whether the condition is the constant True — such
// selections never drop tuples, which the always-empty-complement analysis
// (Example 2.4) requires.
func IsTrivial(c Cond) bool {
	_, ok := c.(True)
	return ok
}

// EvalCond evaluates the condition on a row. Comparisons between
// incomparable values (e.g. a string attribute against an int constant)
// evaluate to false, as do comparisons referencing attributes missing from
// the row — static validation flags the latter before evaluation.
func EvalCond(c Cond, row relation.Row) bool {
	switch n := c.(type) {
	case True:
		return true
	case *Cmp:
		l, ok1 := operandValue(n.Left, row)
		r, ok2 := operandValue(n.Right, row)
		if !ok1 || !ok2 {
			return false
		}
		cmp, ok := l.Compare(r)
		if !ok {
			return false
		}
		switch n.Op {
		case OpEq:
			return cmp == 0
		case OpNe:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		default:
			return false
		}
	case *And:
		return EvalCond(n.L, row) && EvalCond(n.R, row)
	case *Or:
		return EvalCond(n.L, row) || EvalCond(n.R, row)
	case *Not:
		return !EvalCond(n.C, row)
	default:
		panic(fmt.Sprintf("algebra: unknown condition %T", c))
	}
}

func operandValue(o Operand, row relation.Row) (relation.Value, bool) {
	if !o.IsAttr {
		return o.Val, true
	}
	if !row.Has(o.Attr) {
		return relation.Null(), false
	}
	return row.Get(o.Attr), true
}

// RenameCondAttrs returns the condition with attribute references renamed
// per mapping (old→new); needed when conditions are pushed through ρ.
func RenameCondAttrs(c Cond, mapping map[string]string) Cond {
	ren := func(o Operand) Operand {
		if o.IsAttr {
			if n, ok := mapping[o.Attr]; ok {
				return AttrOperand(n)
			}
		}
		return o
	}
	switch n := c.(type) {
	case True:
		return True{}
	case *Cmp:
		return &Cmp{Left: ren(n.Left), Op: n.Op, Right: ren(n.Right)}
	case *And:
		return &And{L: RenameCondAttrs(n.L, mapping), R: RenameCondAttrs(n.R, mapping)}
	case *Or:
		return &Or{L: RenameCondAttrs(n.L, mapping), R: RenameCondAttrs(n.R, mapping)}
	case *Not:
		return &Not{C: RenameCondAttrs(n.C, mapping)}
	default:
		panic(fmt.Sprintf("algebra: unknown condition %T", c))
	}
}

func (True) String() string { return "true" }

func (c *Cmp) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

func (a *And) String() string {
	return condParen(a.L) + " and " + condParen(a.R)
}

func (o *Or) String() string {
	return condParen(o.L) + " or " + condParen(o.R)
}

func (n *Not) String() string {
	return "not " + condParen(n.C)
}

func condParen(c Cond) string {
	switch c.(type) {
	case *And, *Or:
		return "(" + c.String() + ")"
	default:
		return c.String()
	}
}
