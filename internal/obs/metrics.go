// Package obs is the dependency-free observability layer of the
// warehouse: a metrics registry (counters, gauges, histograms) with
// Prometheus text exposition, structured logging on log/slog with
// per-request IDs, and HTTP instrumentation helpers. Everything is plain
// standard library so the engine stays free of third-party dependencies
// while still speaking the formats production scrapers and log pipelines
// expect.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimension values to a metric series. The same metric
// name with different label values yields distinct series under one
// HELP/TYPE family, exactly as Prometheus models it.
type Labels map[string]string

// DefLatencyBuckets are the fixed histogram bucket upper bounds (in
// seconds) used for all latency histograms. They reach from 50µs — the
// in-memory engine answers small queries in well under a millisecond —
// up to 10s for pathological scans.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the series to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// ObservedGauge is a float-valued gauge whose samples can carry an
// exemplar trace ID, the way histogram buckets do: the scrape line
// links the CURRENT value to the trace that set it. Built for
// replication lag — when a follower's catch-up lag spikes, the gauge's
// exemplar leads straight to the apply trace that was running when the
// lag was measured. Safe for concurrent use.
type ObservedGauge struct {
	mu sync.Mutex
	v  float64
	ex Exemplar
}

// Set replaces the value without touching the exemplar.
func (g *ObservedGauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// SetWithExemplar replaces the value and, when traceID is non-empty,
// the exemplar linking it to its trace.
func (g *ObservedGauge) SetWithExemplar(v float64, traceID string) {
	g.mu.Lock()
	g.v = v
	if traceID != "" {
		g.ex = Exemplar{TraceID: traceID, Value: v}
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *ObservedGauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Exemplar returns the most recent exemplar (zero value when none was
// ever recorded).
func (g *ObservedGauge) Exemplar() Exemplar {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ex
}

// Exemplar links one observed value to the trace that produced it, in
// the OpenMetrics sense: scrape output carries the last exemplar per
// bucket so a latency spike in a dashboard can be followed straight to
// its lineage trace under GET /traces/{id}.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram counts observations into fixed buckets and tracks their sum,
// exposed in Prometheus cumulative-bucket form. Safe for concurrent use.
type Histogram struct {
	mu        sync.Mutex
	upper     []float64  // sorted upper bounds; +Inf is implicit
	counts    []uint64   // per-bucket (non-cumulative) counts
	exemplars []Exemplar // lazily allocated, len(upper)+1 (+Inf last)
	sum       float64
	count     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveWithExemplar(v, "") }

// ObserveWithExemplar records one value and, when traceID is non-empty,
// remembers it as the owning bucket's most recent exemplar.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	bucket := len(h.upper) // implicit +Inf
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i]++
			bucket = i
			break
		}
	}
	if traceID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.upper)+1)
		}
		h.exemplars[bucket] = Exemplar{TraceID: traceID, Value: v}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns the cumulative bucket counts (one per upper bound,
// +Inf excluded), the sum of observations, and the total count.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return cumulative, h.sum, h.count
}

// Exemplars returns a copy of the per-bucket exemplars (one slot per
// upper bound plus +Inf; zero-value slots mean none recorded), or nil
// when no exemplar was ever observed.
func (h *Histogram) Exemplars() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	return append([]Exemplar(nil), h.exemplars...)
}

// metricKind discriminates the series types of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindObservedGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance of a family.
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	obsg    *ObservedGauge
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]*series // keyed by canonical label signature
	order   []string           // registration order of signatures
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Lookups are idempotent: asking for the same name and
// labels returns the same instrument, so hot paths may re-resolve instead
// of caching. Mixing kinds (or histogram buckets) under one name panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature canonicalizes labels for series lookup.
func signature(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(escapeLabel(labels[k]))
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the series for (name, labels) with the given
// kind, running mk to build a fresh series.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels, buckets []float64, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	sig := signature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = mk()
		if len(labels) > 0 {
			s.labels = make(Labels, len(labels))
			for k, v := range labels {
				s.labels[k] = v
			}
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, kindCounter, labels, nil, func() *series {
		return &series{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, kindGauge, labels, nil, func() *series {
		return &series{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (e.g. live warehouse sizes). Re-registering the same series replaces
// the function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, help, kindGaugeFunc, labels, nil, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// ObservedGauge returns the exemplar-carrying float gauge for (name,
// labels), creating it on first use. It renders as TYPE gauge with an
// OpenMetrics exemplar suffix when one was recorded.
func (r *Registry) ObservedGauge(name, help string, labels Labels) *ObservedGauge {
	return r.lookup(name, help, kindObservedGauge, labels, nil, func() *series {
		return &series{obsg: &ObservedGauge{}}
	}).obsg
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds (in ascending order; +Inf implicit) on
// first use. All series of one family share the first registration's
// buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, buckets, func() *series {
		f := r.families[name]
		ub := f.buckets
		return &series{hist: &Histogram{
			upper:  append([]float64(nil), ub...),
			counts: make([]uint64, len(ub)),
		}}
	}).hist
}

// formatFloat renders a sample or bucket bound the way Prometheus does.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label set (plus an optional extra pair, used for
// histogram le) as {k="v",...}; empty labels render as nothing.
func renderLabels(labels Labels, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+`="`+escapeLabel(labels[k])+`"`)
	}
	if extraKey != "" {
		parts = append(parts, extraKey+`="`+escapeLabel(extraVal)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// renderExemplar renders the OpenMetrics exemplar suffix for bucket i
// (" # {trace_id=\"...\"} value"), or "" when none was recorded. The
// suffix makes histogram lines OpenMetrics-flavored; the rest of the
// exposition stays plain 0.0.4.
func renderExemplar(ex []Exemplar, i int) string {
	if i >= len(ex) || ex[i].TraceID == "" {
		return ""
	}
	return ` # {trace_id="` + escapeLabel(ex[i].TraceID) + `"} ` + formatFloat(ex[i].Value)
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type snap struct {
		f      *family
		series []*series
	}
	snaps := make([]snap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		ss := make([]*series, 0, len(f.order))
		for _, sig := range f.order {
			ss = append(ss, f.series[sig])
		}
		snaps = append(snaps, snap{f, ss})
	}
	r.mu.Unlock()

	for _, sn := range snaps {
		f := sn.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sn.series {
			ls := renderLabels(s.labels, "", "")
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.counter.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.gauge.Value()); err != nil {
					return err
				}
			case kindGaugeFunc:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(v)); err != nil {
					return err
				}
			case kindObservedGauge:
				suffix := renderExemplar([]Exemplar{s.obsg.Exemplar()}, 0)
				if _, err := fmt.Fprintf(w, "%s%s %s%s\n", f.name, ls, formatFloat(s.obsg.Value()), suffix); err != nil {
					return err
				}
			case kindHistogram:
				cum, sum, count := s.hist.Snapshot()
				ex := s.hist.Exemplars()
				for i, ub := range f.buckets {
					line := renderLabels(s.labels, "le", formatFloat(ub))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, line, cum[i], renderExemplar(ex, i)); err != nil {
						return err
					}
				}
				inf := renderLabels(s.labels, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, inf, count, renderExemplar(ex, len(f.buckets))); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
