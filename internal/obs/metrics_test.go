package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dw_test_total", "help", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Idempotent lookup: same instrument comes back.
	if r.Counter("dw_test_total", "help", nil) != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("dw_test_gauge", "help", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestCounterLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dw_requests_total", "h", Labels{"route": "GET /query"})
	b := r.Counter("dw_requests_total", "h", Labels{"route": "GET /stats"})
	if a == b {
		t.Fatal("distinct labels must yield distinct series")
	}
	a.Add(3)
	b.Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dw_requests_total counter",
		`dw_requests_total{route="GET /query"} 3`,
		`dw_requests_total{route="GET /stats"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per series.
	if strings.Count(out, "# TYPE dw_requests_total") != 1 {
		t.Errorf("TYPE repeated:\n%s", out)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{upper: []float64{0.01, 0.1, 1}, counts: make([]uint64, 3)}
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	// Cumulative: ≤0.01 → {0.005, 0.01}; ≤0.1 adds 0.05; ≤1 adds 0.5;
	// 5 lands only in +Inf.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Errorf("cumulative = %v, want [2 3 4]", cum)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 5; math.Abs(sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dw_latency_seconds", "latency", []float64{0.01, 0.1}, Labels{"route": "GET /query"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.ObserveDuration(2 * time.Second)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dw_latency_seconds latency",
		"# TYPE dw_latency_seconds histogram",
		`dw_latency_seconds_bucket{route="GET /query",le="0.01"} 1`,
		`dw_latency_seconds_bucket{route="GET /query",le="0.1"} 2`,
		`dw_latency_seconds_bucket{route="GET /query",le="+Inf"} 3`,
		`dw_latency_seconds_sum{route="GET /query"} 2.055`,
		`dw_latency_seconds_count{route="GET /query"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dw_refresh_lag_seconds", "lag", []float64{0.01, 0.1}, nil)
	h.Observe(0.005) // no exemplar
	h.ObserveWithExemplar(0.05, "aabb01")
	h.ObserveWithExemplar(0.06, "aabb02") // replaces the 0.1-bucket exemplar
	h.ObserveWithExemplar(7, "ccdd03")    // +Inf bucket
	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want 3", len(ex))
	}
	if ex[0].TraceID != "" || ex[1].TraceID != "aabb02" || ex[2].TraceID != "ccdd03" {
		t.Fatalf("exemplars = %+v", ex)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dw_refresh_lag_seconds_bucket{le=\"0.01\"} 1\n", // no suffix
		`dw_refresh_lag_seconds_bucket{le="0.1"} 3 # {trace_id="aabb02"} 0.06`,
		`dw_refresh_lag_seconds_bucket{le="+Inf"} 4 # {trace_id="ccdd03"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A histogram that never saw an exemplar renders no suffixes at all.
	r2 := NewRegistry()
	r2.Histogram("dw_plain_seconds", "h", []float64{1}, nil).Observe(0.5)
	sb.Reset()
	if err := r2.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# {") {
		t.Errorf("plain histogram rendered an exemplar:\n%s", sb.String())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("dw_live", "live value", nil, func() float64 { n++; return n })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dw_live 42") {
		t.Errorf("gauge func not evaluated at scrape:\n%s", sb.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("dw_esc_total", "h", Labels{"q": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `dw_esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dw_kind", "h", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dw_kind", "h", nil)
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run with -race.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("dw_conc_total", "h", Labels{"g": string(rune('a' + g%4))}).Inc()
				r.Histogram("dw_conc_seconds", "h", DefLatencyBuckets, nil).Observe(0.001)
				var sb strings.Builder
				if i%50 == 0 {
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Histogram("dw_conc_seconds", "h", DefLatencyBuckets, nil); func() uint64 {
		_, _, c := got.Snapshot()
		return c
	}() != 8*200 {
		t.Error("histogram lost observations")
	}
	total := int64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("dw_conc_total", "h", Labels{"g": l}).Value()
	}
	if total != 8*200 {
		t.Errorf("counters sum to %d, want %d", total, 8*200)
	}
}
