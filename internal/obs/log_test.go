package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestRequestIDs(t *testing.T) {
	ctx, id := WithRequestID(context.Background())
	if id == "" || RequestID(ctx) != id {
		t.Fatalf("request id not carried: %q vs %q", id, RequestID(ctx))
	}
	// Re-wrapping keeps the existing ID.
	ctx2, id2 := WithRequestID(ctx)
	if id2 != id || ctx2 != ctx {
		t.Errorf("existing id replaced: %q → %q", id, id2)
	}
	// Distinct requests get distinct IDs.
	_, other := WithRequestID(context.Background())
	if other == id {
		t.Error("two requests share an id")
	}
}

func TestJSONLogger(t *testing.T) {
	var sb strings.Builder
	log := NewLogger(&sb, slog.LevelInfo, true)
	log.Info("request", "id", "abc123", "route", "GET /query", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, sb.String())
	}
	if rec["id"] != "abc123" || rec["route"] != "GET /query" || rec["msg"] != "request" {
		t.Errorf("record = %v", rec)
	}
	// Debug is below the level and must be dropped.
	sb.Reset()
	log.Debug("noise")
	if sb.Len() != 0 {
		t.Errorf("debug not filtered: %s", sb.String())
	}
}
