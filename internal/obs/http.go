package obs

import (
	"net/http"
	"net/http/pprof"
)

// StatusRecorder wraps a ResponseWriter to capture the response status
// and body size for access logging and status-labeled metrics.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
	Bytes  int64
}

// NewStatusRecorder wraps w; the status defaults to 200 (the value the
// net/http stack reports when the handler never calls WriteHeader).
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
}

// WriteHeader records the status code.
func (r *StatusRecorder) WriteHeader(code int) {
	r.Status = code
	r.ResponseWriter.WriteHeader(code)
}

// Write counts the response bytes.
func (r *StatusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.Bytes += int64(n)
	return n, err
}

// MetricsHandler serves the registry in Prometheus text exposition
// format — mount it as GET /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// DebugMux returns a mux exposing net/http/pprof (CPU, heap, goroutine,
// block profiles and execution traces) under /debug/pprof/. Serve it on
// a separate, non-public listener: profiling endpoints are opt-in and
// never belong on the query port.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
