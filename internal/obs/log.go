package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"sync/atomic"
)

// NewLogger returns a structured logger writing to w at the given level —
// JSON records when json is true, logfmt-style text otherwise. Handlers
// are slog's; callers attach request-scoped attributes with
// logger.With(...).
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests) that did not configure logging.
func NopLogger() *slog.Logger {
	return NewLogger(io.Discard, slog.LevelError, false)
}

// ctxKey keys context values owned by this package.
type ctxKey int

const requestIDKey ctxKey = iota

// reqSeq disambiguates request IDs if the random source ever fails.
var reqSeq atomic.Uint64

// newRequestID returns a short random hex ID for correlating the log
// lines of one request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		var c [8]byte
		n := reqSeq.Add(1)
		for i := 0; i < 8; i++ {
			c[i] = byte(n >> (8 * i))
		}
		return hex.EncodeToString(c[:])
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns ctx carrying a fresh request ID (or the existing
// one, if the context already has one) and the ID itself.
func WithRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := newRequestID()
	return context.WithValue(ctx, requestIDKey, id), id
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
