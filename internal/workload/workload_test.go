package workload

import (
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

func TestFigure1Fixture(t *testing.T) {
	for _, withRef := range []bool{false, true} {
		sc := Figure1(withRef)
		if err := sc.DB.Validate(); err != nil {
			t.Fatal(err)
		}
		if sc.Views.Len() != 1 {
			t.Error("Figure1 must have exactly the Sold view")
		}
		st := Figure1State(sc.DB)
		if st.Size() != 6 {
			t.Errorf("paper state has %d tuples, want 6", st.Size())
		}
		if err := st.Check(); err != nil {
			t.Errorf("paper state inconsistent: %v", err)
		}
		hasIND := sc.DB.Constraints().Len() > 0
		if hasIND != withRef {
			t.Errorf("withRefInt=%v but IND present=%v", withRef, hasIND)
		}
	}
}

func TestExampleFixtures(t *testing.T) {
	cases := []Scenario{
		Example21(false), Example21(true),
		Example22(),
		Example23(E23None, true), Example23(E23KeyR1, true),
		Example23(E23AllKeysAndINDs, true), Example23(E23AllKeysAndINDs, false),
	}
	for _, sc := range cases {
		if err := sc.DB.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		for _, v := range sc.Views.Views() {
			if err := v.Validate(sc.DB); err != nil {
				t.Errorf("%s/%s: %v", sc.Name, v.Name, err)
			}
		}
	}
	// Constraint regimes differ as specified.
	if sc := Example23(E23None, true); sc.DB.Constraints().Len() != 0 {
		t.Error("E23None has INDs")
	}
	if sc := Example23(E23AllKeysAndINDs, true); sc.DB.Constraints().Len() != 2 {
		t.Errorf("E23AllKeysAndINDs INDs = %d, want 2", sc.DB.Constraints().Len())
	}
	if sc := Example23(E23AllKeysAndINDs, false); sc.DB.Constraints().Len() != 1 {
		t.Errorf("reduced view set INDs = %d, want 1 (only AC)", sc.DB.Constraints().Len())
	}
}

func TestGenStatesConsistent(t *testing.T) {
	scenarios := []Scenario{
		Figure1(true),
		Example23(E23AllKeysAndINDs, true),
		RandomScenario(3, 4, 2),
	}
	for _, sc := range scenarios {
		gen := NewGen(sc.DB, 9)
		for i, st := range gen.States(10, 8) {
			if err := st.Check(); err != nil {
				t.Errorf("%s state %d: %v", sc.Name, i, err)
			}
		}
	}
}

func TestGenStatesDeterministic(t *testing.T) {
	sc := Figure1(true)
	a := NewGen(sc.DB, 5).State(10)
	b := NewGen(sc.DB, 5).State(10)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same seed produced different states")
	}
	c := NewGen(sc.DB, 6).State(10)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds produced identical states")
	}
}

func TestGenUpdateKeepsConsistency(t *testing.T) {
	sc := Example23(E23AllKeysAndINDs, true)
	gen := NewGen(sc.DB, 13)
	st := gen.State(10)
	for round := 0; round < 20; round++ {
		u := gen.Update(st, 4, 3)
		if err := u.Apply(st); err != nil {
			t.Fatal(err)
		}
		if err := st.Check(); err != nil {
			t.Fatalf("round %d: update broke consistency: %v\n%s", round, err, u)
		}
	}
}

func TestGenUpdateNormalized(t *testing.T) {
	sc := Figure1(false)
	gen := NewGen(sc.DB, 7)
	st := gen.State(8)
	u := gen.Update(st, 5, 5)
	// Every insert must be absent, every delete present.
	for _, name := range u.Touched() {
		r := st.MustRelation(name)
		if ins := u.Inserts(name); ins != nil {
			ins.Each(func(tu relation.Tuple) {
				if r.ContainsAligned(tu, ins) {
					t.Errorf("insert of present tuple %v into %s", tu, name)
				}
			})
		}
		if del := u.Deletes(name); del != nil {
			del.Each(func(tu relation.Tuple) {
				if !r.ContainsAligned(tu, del) {
					t.Errorf("delete of absent tuple %v from %s", tu, name)
				}
			})
		}
	}
}

func TestGenRespectsDomains(t *testing.T) {
	sc := Figure1(false)
	sc.DB.MustAddDomain("Emp", algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(100)))
	gen := NewGen(sc.DB, 3)
	st := gen.State(10)
	// The generated int domain tops out well below 100, so Emp must be
	// empty rather than inconsistent.
	if st.MustRelation("Emp").Len() != 0 {
		t.Errorf("domain constraint ignored: %v", st.MustRelation("Emp"))
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestChainSchema(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		db, views := ChainSchema(n)
		if err := db.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(db.Names()) != n {
			t.Errorf("n=%d: %d relations", n, len(db.Names()))
		}
		if views.Len() != n+1 {
			t.Errorf("n=%d: %d views, want %d", n, views.Len(), n+1)
		}
		if db.Constraints().Len() != n-1 {
			t.Errorf("n=%d: %d INDs, want %d", n, db.Constraints().Len(), n-1)
		}
		gen := NewGen(db, 1)
		if err := gen.State(6).Check(); err != nil {
			t.Errorf("n=%d: generated state inconsistent: %v", n, err)
		}
	}
}

func TestRandomScenarioShape(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		sc := RandomScenario(seed, 4, 3)
		if err := sc.DB.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sc.Views.Len() == 0 {
			t.Errorf("seed %d: no views", seed)
		}
	}
	// Degenerate arguments are clamped, not fatal.
	sc := RandomScenario(1, 0, 1)
	if len(sc.DB.Names()) != 1 {
		t.Error("nRels clamp failed")
	}
}

func TestStatesAdapter(t *testing.T) {
	sc := Figure1(false)
	st := Figure1State(sc.DB)
	adapted := States(st)
	r, err := algebra.Eval(algebra.NewBase("Emp"), adapted[0])
	if err != nil || r.Len() != 3 {
		t.Errorf("adapter broken: %v %v", r, err)
	}
}
