// Package workload provides the scenarios used throughout the
// reproduction: the paper's running examples as ready-made databases and
// view sets (Figure 1, Examples 2.1–2.4), seeded random generators for
// schemata, states and update streams respecting declared constraints, and
// a TPC-D-like multi-site star-schema generator for the Section 5
// experiments.
package workload

import (
	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// Scenario bundles a database, a warehouse view set, and a name, so tests,
// examples and benchmarks share identical setups.
type Scenario struct {
	Name  string
	DB    *catalog.Database
	Views *view.Set
}

// Figure1 returns the paper's running example: Sale(item, clerk),
// Emp(clerk, age) with key clerk, and the warehouse view
// Sold = Sale ⋈ Emp. Pass withRefInt to add the referential integrity
// constraint π_clerk(Sale) ⊆ π_clerk(Emp) of Example 2.4.
func Figure1(withRefInt bool) Scenario {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:string", "clerk:string")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	if withRefInt {
		db.MustAddIND("Sale", "Emp", "clerk")
	}
	sold := view.NewPSJ("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp")
	return Scenario{Name: "figure1", DB: db, Views: view.MustNewSet(db, sold)}
}

// Figure1State populates the concrete state shown in Figure 1.
func Figure1State(db *catalog.Database) *catalog.State {
	return db.NewState().
		MustInsert("Sale", relation.String_("TV set"), relation.String_("Mary")).
		MustInsert("Sale", relation.String_("VCR"), relation.String_("Mary")).
		MustInsert("Sale", relation.String_("PC"), relation.String_("John")).
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23)).
		MustInsert("Emp", relation.String_("John"), relation.Int(25)).
		MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
}

// Example21 returns Example 2.1's scenario: R(X,Y), S(Y,Z), T(Z) without
// constraints. With withV2 false the warehouse is {V1 = R ⋈ S ⋈ T}; with
// withV2 true it additionally holds V2 = S, which makes the S-complement
// always empty (the Huyn multiple-view self-maintenance situation).
func Example21(withV2 bool) Scenario {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("R", "X:int", "Y:int")).
		MustAddSchema(relation.NewSchema("S", "Y:int", "Z:int")).
		MustAddSchema(relation.NewSchema("T", "Z:int"))
	v1 := view.NewPSJ("V1", []string{"X", "Y", "Z"}, nil, "R", "S", "T")
	views := []*view.PSJ{v1}
	if withV2 {
		views = append(views, view.NewPSJ("V2", []string{"Y", "Z"}, nil, "S"))
	}
	name := "example2.1-v1"
	if withV2 {
		name = "example2.1-v1v2"
	}
	return Scenario{Name: name, DB: db, Views: view.MustNewSet(db, views...)}
}

// Example22 returns Example 2.2's scenario: a single relation R(A,B,C)
// with views V1 = π_AB(R), V2 = π_BC(R) and V3 = σ_{B=b}(R), for which
// Proposition 2.2's complement is not minimal.
func Example22() Scenario {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("R", "A:int", "B:int", "C:int"))
	v1 := view.NewPSJ("V1", []string{"A", "B"}, nil, "R")
	v2 := view.NewPSJ("V2", []string{"B", "C"}, nil, "R")
	v3 := view.NewPSJ("V3", []string{"A", "B", "C"},
		algebra.AttrEqConst("B", relation.Int(0)), "R")
	return Scenario{Name: "example2.2", DB: db, Views: view.MustNewSet(db, v1, v2, v3)}
}

// Example23Constraints selects which constraints Example 2.3 is run with.
type Example23Constraints int

// The three constraint regimes Example 2.3 walks through.
const (
	// E23None: no keys, no INDs ("assume first that there are no
	// constraints").
	E23None Example23Constraints = iota
	// E23KeyR1: A is a key for R1 only.
	E23KeyR1
	// E23AllKeysAndINDs: A is a key for R1, R2, R3; π_AB(R3) ⊆ π_AB(R1)
	// and π_AC(R2) ⊆ π_AC(R1) — the full setting of the example's first
	// part.
	E23AllKeysAndINDs
)

// Example23 returns Example 2.3's scenario: R1(A,B,C), R2(A,C,D), R3(A,B)
// under the chosen constraint regime. With fullViewSet the warehouse is
// {V1 = R1 ⋈ R2, V2 = R3, V3 = π_AB(R1), V4 = π_AC(R1)}; without it, the
// reduced set V' = {V1, V3} from the example's continuation.
func Example23(cons Example23Constraints, fullViewSet bool) Scenario {
	r1 := relation.NewSchema("R1", "A:int", "B:int", "C:int")
	r2 := relation.NewSchema("R2", "A:int", "C:int", "D:int")
	r3 := relation.NewSchema("R3", "A:int", "B:int")
	switch cons {
	case E23KeyR1:
		r1.WithKey("A")
	case E23AllKeysAndINDs:
		r1.WithKey("A")
		r2.WithKey("A")
		r3.WithKey("A")
	}
	db := catalog.NewDatabase().MustAddSchema(r1).MustAddSchema(r2).MustAddSchema(r3)
	if cons == E23AllKeysAndINDs {
		if fullViewSet {
			db.MustAddIND("R3", "R1", "A", "B")
		}
		db.MustAddIND("R2", "R1", "A", "C")
	}
	v1 := view.NewPSJ("V1", []string{"A", "B", "C", "D"}, nil, "R1", "R2")
	v3 := view.NewPSJ("V3", []string{"A", "B"}, nil, "R1")
	views := []*view.PSJ{v1}
	if fullViewSet {
		views = append(views,
			view.NewPSJ("V2", []string{"A", "B"}, nil, "R3"),
			v3,
			view.NewPSJ("V4", []string{"A", "C"}, nil, "R1"))
	} else {
		views = append(views, v3)
	}
	return Scenario{Name: "example2.3", DB: db, Views: view.MustNewSet(db, views...)}
}

// States adapts catalog states to the algebra.State slices the ordering
// and verification helpers take.
func States(states ...*catalog.State) []algebra.State {
	out := make([]algebra.State, len(states))
	for i, st := range states {
		out[i] = st
	}
	return out
}
