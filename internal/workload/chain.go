package workload

import (
	"fmt"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// ChainSchema builds a scalable schema family for the E13 cost sweep: n
// relations R1(x1,x2) … Rn(xn,xn+1), each with key xi and the inclusion
// dependency π_{xi+1}(Ri) ⊆ π_{xi+1}(Ri+1) linking the chain (acyclic, and
// every IND's attribute set contains the target's key, so each link
// contributes a pseudo-view under Theorem 2.2). The warehouse holds the
// full chain join as an SJ view plus, for every odd relation, a full-copy
// view and, for every even relation, a key projection — a mix that makes
// cover enumeration non-trivial at every size.
func ChainSchema(n int) (*catalog.Database, *view.Set) {
	if n < 1 {
		panic("workload: chain of zero relations")
	}
	db := catalog.NewDatabase()
	relName := func(i int) string { return fmt.Sprintf("R%d", i) }
	attr := func(i int) string { return fmt.Sprintf("x%d", i) }
	for i := 1; i <= n; i++ {
		sc := relation.NewSchema(relName(i), attr(i)+":int", attr(i+1)+":int").WithKey(attr(i))
		db.MustAddSchema(sc)
	}
	for i := 1; i < n; i++ {
		db.MustAddIND(relName(i), relName(i+1), attr(i+1))
	}

	var views []*view.PSJ
	var chainAttrs []string
	var bases []string
	for i := 1; i <= n; i++ {
		chainAttrs = append(chainAttrs, attr(i))
		bases = append(bases, relName(i))
	}
	chainAttrs = append(chainAttrs, attr(n+1))
	views = append(views, view.NewPSJ("VChain", chainAttrs, nil, bases...))
	for i := 1; i <= n; i++ {
		if i%2 == 1 {
			views = append(views,
				view.NewPSJ(fmt.Sprintf("VCopy%d", i), []string{attr(i), attr(i + 1)}, nil, relName(i)))
		} else {
			views = append(views,
				view.NewPSJ(fmt.Sprintf("VKey%d", i), []string{attr(i)}, nil, relName(i)))
		}
	}
	return db, view.MustNewSet(db, views...)
}
