package workload

import (
	"fmt"
	"math/rand"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// RandomScenario generates a random database (schemata, keys, acyclic
// INDs) together with a random set of PSJ views over it — the fuzzing
// substrate for the whole-system property tests: whatever this generator
// produces, Compute must yield a complement whose reconstruction and
// injectivity properties hold.
//
// Construction notes:
//   - attributes are drawn from a shared pool so relations overlap and
//     natural joins are meaningful;
//   - keys are declared on a random subset of relations (single-attribute,
//     as typical);
//   - INDs only go from higher-numbered to lower-numbered relations, which
//     makes the IND graph acyclic by construction;
//   - views join connected relation subsets, with random projections that
//     always keep join attributes meaningful and random simple selections.
func RandomScenario(seed int64, nRels, nViews int) Scenario {
	rng := rand.New(rand.NewSource(seed))
	if nRels < 1 {
		nRels = 1
	}
	if nRels > 6 {
		nRels = 6
	}

	// Shared attribute pool: a0..a7, all ints.
	pool := make([]string, 8)
	for i := range pool {
		pool[i] = fmt.Sprintf("a%d", i)
	}

	db := catalog.NewDatabase()
	schemas := make([]*relation.Schema, nRels)
	for i := 0; i < nRels; i++ {
		// 2–4 attributes per relation, always including a "spine"
		// attribute shared with the next relation so joins connect.
		attrs := relation.NewAttrSet(pool[i%len(pool)], pool[(i+1)%len(pool)])
		for len(attrs) < 2+rng.Intn(3) {
			attrs[pool[rng.Intn(len(pool))]] = struct{}{}
		}
		specs := make([]string, 0, len(attrs))
		for _, a := range attrs.Sorted() {
			specs = append(specs, a+":int")
		}
		sc := relation.NewSchema(fmt.Sprintf("T%d", i), specs...)
		if rng.Intn(2) == 0 {
			sc.WithKey(attrs.Sorted()[rng.Intn(attrs.Len())])
		}
		schemas[i] = sc
		db.MustAddSchema(sc)
	}

	// Acyclic INDs: from T_j to T_i with j > i, on a shared attribute,
	// and (to be usable by Theorem 2.2) preferably containing the
	// target's key.
	for tries := 0; tries < nRels; tries++ {
		j := rng.Intn(nRels)
		i := rng.Intn(nRels)
		if j <= i {
			continue
		}
		shared := schemas[j].AttrSet().Intersect(schemas[i].AttrSet())
		if shared.IsEmpty() {
			continue
		}
		attrs := shared.Sorted()
		// The IND source must actually be constrainable: skip when the
		// target has a key outside the shared set half of the time to
		// exercise both code paths.
		if err := db.AddIND(schemas[j].Name, schemas[i].Name, attrs...); err != nil {
			continue
		}
	}

	// Random views over connected base subsets.
	var views []*view.PSJ
	for v := 0; v < nViews; v++ {
		start := rng.Intn(nRels)
		baseSet := []int{start}
		attrs := schemas[start].AttrSet()
		for ext := 0; ext < rng.Intn(nRels); ext++ {
			cand := rng.Intn(nRels)
			dup := false
			for _, b := range baseSet {
				if b == cand {
					dup = true
				}
			}
			if dup || schemas[cand].AttrSet().Intersect(attrs).IsEmpty() {
				continue
			}
			baseSet = append(baseSet, cand)
			attrs = attrs.Union(schemas[cand].AttrSet())
		}
		names := make([]string, len(baseSet))
		for i, b := range baseSet {
			names[i] = schemas[b].Name
		}
		// Random projection: keep each attribute with probability 3/4,
		// at least one.
		var proj []string
		for _, a := range attrs.Sorted() {
			if rng.Intn(4) > 0 {
				proj = append(proj, a)
			}
		}
		if len(proj) == 0 {
			proj = []string{attrs.Sorted()[0]}
		}
		// Random simple selection on a projected attribute, sometimes.
		var cond algebra.Cond = algebra.True{}
		if rng.Intn(3) == 0 {
			attr := proj[rng.Intn(len(proj))]
			ops := []algebra.CmpOp{algebra.OpLt, algebra.OpLe, algebra.OpGt, algebra.OpGe, algebra.OpNe}
			cond = algebra.AttrCmpConst(attr, ops[rng.Intn(len(ops))], relation.Int(int64(rng.Intn(12))))
		}
		views = append(views, view.NewPSJ(fmt.Sprintf("V%d", v), proj, cond, names...))
	}
	return Scenario{
		Name:  fmt.Sprintf("random-%d", seed),
		DB:    db,
		Views: view.MustNewSet(db, views...),
	}
}
