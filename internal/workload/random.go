package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

// Gen generates constraint-respecting random states and update streams for
// a database. All generation is deterministic per seed.
type Gen struct {
	db  *catalog.Database
	rng *rand.Rand
	// Domain is the number of distinct values per attribute; small domains
	// make joins and constraint interactions dense. Default 16.
	Domain int
}

// NewGen returns a generator for the database with the given seed.
func NewGen(db *catalog.Database, seed int64) *Gen {
	return &Gen{db: db, rng: rand.New(rand.NewSource(seed)), Domain: 16}
}

// value draws a random value of the attribute's declared kind.
func (g *Gen) value(k relation.Kind) relation.Value {
	n := g.rng.Intn(g.Domain)
	switch k {
	case relation.KindString:
		return relation.String_(fmt.Sprintf("v%02d", n))
	case relation.KindFloat:
		return relation.Float(float64(n) / 2)
	case relation.KindBool:
		return relation.Bool(n%2 == 0)
	default: // KindInt and untyped
		return relation.Int(int64(n))
	}
}

// genOrder returns the base relations with IND targets before sources, so
// source tuples can be drawn from already-populated target projections.
func (g *Gen) genOrder() []string {
	topo, err := g.db.Constraints().TopoOrder() // sources first
	if err != nil {
		// Cyclic INDs are rejected at declaration time; a cycle here is a
		// programming error.
		panic(err)
	}
	pos := make(map[string]int, len(topo))
	for i, n := range topo {
		pos[n] = i
	}
	names := g.db.Names()
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, iok := pos[out[i]]
		pj, jok := pos[out[j]]
		switch {
		case iok && jok:
			return pi > pj // reverse topological: targets first
		case jok:
			return false
		case iok:
			return true
		default:
			return false
		}
	})
	return out
}

// State generates a random consistent state with roughly size tuples per
// relation (fewer when keys or INDs constrain the space). The result
// always satisfies all declared constraints.
func (g *Gen) State(size int) *catalog.State {
	st := g.db.NewState()
	for _, name := range g.genOrder() {
		sc, _ := g.db.Schema(name)
		for i := 0; i < size; i++ {
			t := g.tupleFor(st, sc)
			if t == nil {
				continue
			}
			if g.insertRespectingKey(st, sc, t) {
				continue
			}
		}
	}
	if err := st.Check(); err != nil {
		panic("workload: generator produced inconsistent state: " + err.Error())
	}
	return st
}

// tupleFor draws a tuple for schema sc that satisfies all INDs whose
// source is sc, pinning IND attributes to values found in the target
// relations. It returns nil when some target projection is empty (no
// consistent tuple exists).
func (g *Gen) tupleFor(st *catalog.State, sc *relation.Schema) relation.Tuple {
	t := make(relation.Tuple, len(sc.Attrs))
	for i, a := range sc.Attrs {
		t[i] = g.value(a.Type)
	}
	for _, d := range g.db.Constraints().INDs() {
		if d.From != sc.Name {
			continue
		}
		target := st.MustRelation(d.To)
		proj := relation.Project(target, d.X.Sorted()...)
		if proj.IsEmpty() {
			return nil
		}
		pick := proj.SortedTuples()[g.rng.Intn(proj.Len())]
		for xi, attr := range d.X.Sorted() {
			for i, a := range sc.Attrs {
				if a.Name == attr {
					t[i] = pick[xi]
				}
			}
		}
	}
	// Domain constraints of the attr=const form pin their attribute after
	// IND pinning (domains are the stronger requirement; the re-check
	// below rejects tuples the two pins leave inconsistent).
	for _, dom := range g.db.Constraints().Domains(sc.Name) {
		for _, c := range algebra.Conjuncts(dom.Cond) {
			cmp, ok := c.(*algebra.Cmp)
			if !ok || cmp.Op != algebra.OpEq || !cmp.Left.IsAttr || cmp.Right.IsAttr {
				continue
			}
			for i, a := range sc.Attrs {
				if a.Name == cmp.Left.Attr {
					t[i] = cmp.Right.Val
				}
			}
		}
	}
	// Overlapping INDs from the same source may fight over shared
	// attributes; re-verify and drop the tuple instead of emitting an
	// inconsistent one.
	for _, d := range g.db.Constraints().INDs() {
		if d.From != sc.Name {
			continue
		}
		target := st.MustRelation(d.To)
		proj := relation.Project(target, d.X.Sorted()...)
		probe := make(relation.Tuple, 0, d.X.Len())
		for _, attr := range d.X.Sorted() {
			for i, a := range sc.Attrs {
				if a.Name == attr {
					probe = append(probe, t[i])
				}
			}
		}
		if !proj.Contains(probe) {
			return nil
		}
	}
	// Final domain verification (non-equality conjuncts included).
	if len(g.db.Constraints().Domains(sc.Name)) > 0 {
		probe := relation.NewFromSchema(sc)
		probe.Insert(t)
		for _, dom := range g.db.Constraints().Domains(sc.Name) {
			cond := dom.Cond
			ok := relation.Select(probe, func(row relation.Row) bool {
				return algebra.EvalCond(cond, row)
			})
			if ok.IsEmpty() {
				return nil
			}
		}
	}
	return t
}

// insertRespectingKey inserts t into st unless it would violate sc's key;
// it reports whether the tuple was inserted.
func (g *Gen) insertRespectingKey(st *catalog.State, sc *relation.Schema, t relation.Tuple) bool {
	r := st.MustRelation(sc.Name)
	if sc.HasKey() {
		keyAttrs := sc.KeySet().Sorted()
		probe := make(relation.Tuple, len(keyAttrs))
		for i, a := range keyAttrs {
			p, _ := r.Pos(a)
			probe[i] = t[p]
		}
		if relation.Project(r, keyAttrs...).Contains(probe) {
			return false
		}
	}
	if _, err := st.Insert(sc.Name, t); err != nil {
		panic("workload: " + err.Error())
	}
	return true
}

// States generates n random consistent states of the given size, always
// prepending the empty state (the ordering and verification corpora want
// it: several of the paper's arguments hinge on the empty state).
func (g *Gen) States(n, size int) []*catalog.State {
	out := []*catalog.State{g.db.NewState()}
	for i := 0; i < n; i++ {
		out = append(out, g.State(size))
	}
	return out
}

// Update generates a random update against the state with roughly nIns
// insertions and nDel deletions overall, cascading deletions along INDs so
// the updated state stays consistent. The returned update is normalized
// against st.
func (g *Gen) Update(st *catalog.State, nIns, nDel int) *catalog.Update {
	u := catalog.NewUpdate()
	work := st.Clone()
	names := g.genOrder()

	// Deletions: pick random existing tuples; cascade to IND sources.
	for i := 0; i < nDel; i++ {
		name := names[g.rng.Intn(len(names))]
		r := work.MustRelation(name)
		if r.IsEmpty() {
			continue
		}
		t := r.SortedTuples()[g.rng.Intn(r.Len())]
		g.cascadeDelete(work, u, name, t)
	}

	// Insertions: targets first so sources can reference new tuples.
	for i := 0; i < nIns; i++ {
		name := names[g.rng.Intn(len(names))]
		sc, _ := g.db.Schema(name)
		t := g.tupleFor(work, sc)
		if t == nil {
			continue
		}
		if g.insertRespectingKey(work, sc, t) {
			if err := u.Insert(name, g.db, t); err != nil {
				panic("workload: " + err.Error())
			}
		}
	}
	return u.Normalize(st)
}

// cascadeDelete removes the tuple and, recursively, all IND-source tuples
// that referenced it, recording every removal in u.
func (g *Gen) cascadeDelete(work *catalog.State, u *catalog.Update, name string, t relation.Tuple) {
	r := work.MustRelation(name)
	if !r.Contains(t) {
		return
	}
	r.Delete(t)
	if err := u.Delete(name, g.db, t); err != nil {
		panic("workload: " + err.Error())
	}
	for _, d := range g.db.Constraints().INDs() {
		if d.To != name {
			continue
		}
		// Source tuples whose X projection matched the deleted tuple must
		// go too, unless another target tuple still covers them.
		target := work.MustRelation(d.To)
		targetProj := relation.Project(target, d.X.Sorted()...)
		src := work.MustRelation(d.From)
		var victims []relation.Tuple
		for s := range src.All() {
			probe := make(relation.Tuple, 0, d.X.Len())
			for _, a := range d.X.Sorted() {
				p, _ := src.Pos(a)
				probe = append(probe, s[p])
			}
			if !targetProj.Contains(probe) {
				victims = append(victims, s.Clone())
			}
		}
		for _, v := range victims {
			g.cascadeDelete(work, u, d.From, v)
		}
	}
}
