package lint

import (
	"go/ast"
	"go/token"
)

// GoLeak flags goroutines launched with no shutdown path: the body
// contains an inescapable `for {}` loop (no break, return, goto or
// terminating call leaves it), or it calls a function that — per the
// cross-package facts — never returns and offers no handle to stop it
// (net/http.ListenAndServe being the canonical case; the *http.Server
// methods are fine because the owner can call Shutdown). Such a
// goroutine outlives every context and keeps its captures reachable for
// the life of the process — the leak class the PR-5 transport work had
// to audit by hand.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines must have a shutdown path: no inescapable loops, no unstoppable listeners",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	facts := pass.Prog.Facts()
	for _, gs := range pass.Prog.GoSites() {
		if gs.Unit.Pkg != pass.Pkg {
			continue
		}
		call := gs.Stmt.Call
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			checkGoBody(pass, gs, fun.Body, facts)
		case *ast.Ident:
			// `launch := func(){...}; go launch()` — resolve the single
			// assignment to the literal; otherwise fall through to the
			// declared-function check.
			if lit := enclosingFuncLit(pass.Pkg.Info, gs.Unit.Decl.Body, fun); lit != nil {
				checkGoBody(pass, gs, lit.Body, facts)
				continue
			}
			checkGoCallee(pass, gs, facts)
		default:
			checkGoCallee(pass, gs, facts)
		}
	}
}

// checkGoBody analyses a goroutine body available in source (a function
// literal at or behind the go statement).
func checkGoBody(pass *Pass, gs GoSite, body *ast.BlockStmt, facts *FactSet) {
	if hasInescapableLoop(body) {
		pass.Reportf(gs.Stmt.Pos(),
			"goroutine never exits: its for {} loop has no break, return, or terminating call; select on a context or done channel inside the loop")
		return
	}
	if name, pos, ok := findNeverReturnsCall(pass, body, facts); ok {
		pass.Reportf(pos,
			"goroutine never exits: %s never returns and has no shutdown handle; use a value with a Shutdown/Close method (e.g. *http.Server) owned by the caller", name)
	}
}

// checkGoCallee analyses `go f(...)` through f's facts.
func checkGoCallee(pass *Pass, gs GoSite, facts *FactSet) {
	fn := calleeFunc(pass.Pkg.Info, gs.Stmt.Call)
	if fn == nil {
		return
	}
	f := facts.get(FuncKey(fn))
	if f.InescapableLoop {
		pass.Reportf(gs.Stmt.Pos(),
			"goroutine never exits: %s contains a for {} loop with no exit; give it a context or done channel to select on", shortFuncName(FuncKey(fn)))
		return
	}
	if f.NeverReturns {
		pass.Reportf(gs.Stmt.Pos(),
			"goroutine never exits: %s never returns and has no shutdown handle", shortFuncName(FuncKey(fn)))
	}
}

// findNeverReturnsCall scans a goroutine body for a call to a function
// whose facts say it never returns. Nested literals and nested go
// statements are separate goroutines and are skipped.
func findNeverReturnsCall(pass *Pass, body *ast.BlockStmt, facts *FactSet) (string, token.Pos, bool) {
	var name string
	var at token.Pos = token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if at != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pass.Pkg.Info, n)
			if fn == nil {
				return true
			}
			f := facts.get(FuncKey(fn))
			if f.NeverReturns || f.InescapableLoop {
				name, at = shortFuncName(FuncKey(fn)), n.Pos()
				return false
			}
		}
		return true
	})
	if at == token.NoPos {
		return "", token.NoPos, false
	}
	return name, at, true
}
