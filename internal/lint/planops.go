package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// PlanOps enforces exhaustive operator dispatch: a type switch over
// algebra.Expr that handles most operator kinds must handle all of them.
// The evaluator, the plan renderer, and the stats merge each dispatch on
// the concrete Expr type; a forgotten case means a new operator silently
// evaluates without counters and tree-vs-flat totals drift. Small
// switches (< planOpsThreshold cases) that intentionally match a subset
// and fall through are exempt.
var PlanOps = &Analyzer{
	Name: "planops",
	Doc:  "type switches dispatching over algebra.Expr must cover every operator kind",
	Run:  runPlanOps,
}

// planOpsThreshold is the number of distinct concrete operator kinds a
// type switch must handle before it is considered an operator dispatch
// that has to be exhaustive.
const planOpsThreshold = 5

const algebraPkgPath = "dwcomplement/internal/algebra"

func runPlanOps(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			iface, ifacePkg := exprInterface(pass.Pkg.Info, sw)
			if iface == nil {
				return true
			}
			impls := exprImpls(ifacePkg, iface)
			if len(impls) == 0 {
				return true
			}
			handled := make(map[string]bool)
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, texpr := range cc.List {
					tv, ok := pass.Pkg.Info.Types[texpr]
					if !ok || tv.Type == nil {
						continue
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == ifacePkg {
						handled[named.Obj().Name()] = true
					}
				}
			}
			var missing []string
			for _, name := range impls {
				if !handled[name] {
					missing = append(missing, name)
				}
			}
			if len(handled) >= planOpsThreshold && len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(),
					"type switch over algebra.Expr handles %d of %d operator kinds; missing: %s — unhandled operators skip stats/plan accounting",
					len(handled), len(impls), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// exprInterface returns the algebra.Expr interface and its package if the
// type switch dispatches on it, else nil.
func exprInterface(info *types.Info, sw *ast.TypeSwitchStmt) (*types.Interface, *types.Package) {
	var ta *ast.TypeAssertExpr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		ta, _ = s.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ta, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if ta == nil {
		return nil, nil
	}
	tv, ok := info.Types[ta.X]
	if !ok || tv.Type == nil {
		return nil, nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil, nil
	}
	obj := named.Obj()
	if obj.Name() != "Expr" || obj.Pkg() == nil || obj.Pkg().Path() != algebraPkgPath {
		return nil, nil
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil, nil
	}
	return iface, obj.Pkg()
}

// exprImpls returns the names of every concrete type in pkg implementing
// the interface (directly or through its pointer), sorted.
func exprImpls(pkg *types.Package, iface *types.Interface) []string {
	var impls []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			impls = append(impls, name)
		}
	}
	sort.Strings(impls)
	return impls
}
