package lint

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"io"
	"sort"
)

// This file is the cross-package Facts layer of the dataflow framework:
// per-function summaries computed bottom-up over the call graph and
// consulted when analyzing callers, so the interprocedural analyzers
// (lockorder, goleak, batchlife) see through call boundaries without
// inlining bodies. Facts have a stable JSON encoding (Encode/Decode) so
// a driver can export the summaries of one analysis run and import them
// into another — the same role x/tools' analysis facts play, rebuilt
// here stdlib-only. Well-known API functions whose sources may be
// outside the analyzed program (the relation mutators, the maintenance
// refresh entry points, net/http's unstoppable listeners) are covered
// by seed facts, so single-package runs still see their effects.

// FuncFacts are the exported properties of one function, keyed by the
// function's canonical name (types.Func.FullName()).
type FuncFacts struct {
	// Acquires lists the mutex classes ("pkg.Type.field" or "pkg.var")
	// this function locks directly.
	Acquires []string `json:"acquires,omitempty"`
	// MayAcquire is the transitive closure of Acquires over the call
	// graph: every mutex class a call to this function may take.
	MayAcquire []string `json:"mayAcquire,omitempty"`

	// MutatesRecv marks a method that invalidates the columnar image of
	// its receiver (a *relation.Relation mutator or a wrapper).
	MutatesRecv bool `json:"mutatesRecv,omitempty"`
	// MutatesParams lists parameter indexes whose relation image the
	// function invalidates.
	MutatesParams []int `json:"mutatesParams,omitempty"`
	// MutatesStored marks a function that invalidates relations reached
	// through struct fields, containers, or call results — the
	// refresh-class effect that invalidates any cursor over stored data.
	MutatesStored bool `json:"mutatesStored,omitempty"`

	// InescapableLoop marks a body containing a `for {}` loop with no
	// break, return, goto, or terminating call that leaves it.
	InescapableLoop bool `json:"inescapableLoop,omitempty"`
	// NeverReturns is the transitive form: the function has an
	// inescapable loop or (possibly) calls something that never returns
	// without a shutdown handle (e.g. net/http.ListenAndServe).
	NeverReturns bool `json:"neverReturns,omitempty"`
	// WaitsOnDone marks a body that receives from a channel or selects
	// on ctx.Done() — used to word goleak diagnostics, not to suppress
	// them (a goroutine that receives but never exits still leaks).
	WaitsOnDone bool `json:"waitsOnDone,omitempty"`
}

// FactSet maps canonical function names to their facts.
type FactSet struct {
	Funcs map[string]*FuncFacts `json:"funcs"`
}

// get returns the facts for key, or an empty read-only default.
func (fs *FactSet) get(key string) *FuncFacts {
	if f, ok := fs.Funcs[key]; ok {
		return f
	}
	return &FuncFacts{}
}

// ensure returns the mutable facts entry for key.
func (fs *FactSet) ensure(key string) *FuncFacts {
	f, ok := fs.Funcs[key]
	if !ok {
		f = &FuncFacts{}
		fs.Funcs[key] = f
	}
	return f
}

// Encode writes the facts as deterministic JSON.
func (fs *FactSet) Encode(w io.Writer) error {
	keys := make([]string, 0, len(fs.Funcs))
	for k := range fs.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Marshal through an ordered rendering so exports diff cleanly.
	type entry struct {
		Func string `json:"func"`
		*FuncFacts
	}
	out := make([]entry, len(keys))
	for i, k := range keys {
		out[i] = entry{Func: k, FuncFacts: fs.Funcs[k]}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeFacts reads an Encode-produced stream back into a FactSet.
func DecodeFacts(r io.Reader) (*FactSet, error) {
	type entry struct {
		Func string `json:"func"`
		*FuncFacts
	}
	var in []entry
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	fs := &FactSet{Funcs: make(map[string]*FuncFacts, len(in))}
	for _, e := range in {
		if e.FuncFacts != nil {
			fs.Funcs[e.Func] = e.FuncFacts
		}
	}
	return fs, nil
}

// seedFacts covers API functions whose effects the analyzers must know
// even when their defining package is not part of the analyzed program
// (fixture runs load a single package; dependency sources are never
// parsed). When the package IS analyzed from source, the computed facts
// land on the same keys and the seeds are redundant but consistent.
func seedFacts() map[string]*FuncFacts {
	const rel = "dwcomplement/internal/relation.Relation"
	recvMut := func() *FuncFacts { return &FuncFacts{MutatesRecv: true} }
	return map[string]*FuncFacts{
		// The two invalidation points of the columnar engine: every
		// mutation path funnels through one of them (relation/index.go).
		"(*" + rel + ").invalidateDerived": recvMut(),
		"(*" + rel + ").noteInserted":      recvMut(),
		// Public mutators, for runs that see relation only as export data.
		"(*" + rel + ").Insert":       recvMut(),
		"(*" + rel + ").InsertValues": recvMut(),
		"(*" + rel + ").InsertAll":    recvMut(),
		"(*" + rel + ").Delete":       recvMut(),
		// Refresh-class entry points: they rewrite stored relations, so
		// every batch cursor over warehouse state is invalidated.
		"(*dwcomplement/internal/maintain.Maintainer).RefreshContext": {MutatesStored: true},
		"(*dwcomplement/internal/maintain.Maintainer).Refresh":        {MutatesStored: true},
		"(*dwcomplement/internal/warehouse.Warehouse).Install":        {MutatesStored: true},
		"dwcomplement.Refresh": {MutatesStored: true},
		// Unstoppable listeners: no handle exists to shut them down, so
		// a goroutine running one can never be collected. (The *Server
		// methods are deliberately not seeded — the owner can call
		// Shutdown/Close.)
		"net/http.ListenAndServe":    {NeverReturns: true},
		"net/http.ListenAndServeTLS": {NeverReturns: true},
	}
}

// Facts computes (once) the fact set of the whole program: direct
// per-function scans, merged with the seeds, then a fixpoint over the
// call graph for the transitive properties.
func (p *Program) Facts() *FactSet {
	if p.facts != nil {
		return p.facts
	}
	p.build()
	fs := &FactSet{Funcs: make(map[string]*FuncFacts)}
	for k, v := range seedFacts() {
		fs.Funcs[k] = v
	}
	// Direct scans.
	for _, u := range p.Units() {
		f := fs.ensure(u.Key)
		sum := p.lockSummary(u)
		f.Acquires = append([]string(nil), sum.acquires...)
		f.InescapableLoop = hasInescapableLoop(u.Decl.Body)
		f.WaitsOnDone = f.WaitsOnDone || waitsOnDone(u.Decl.Body)
	}
	// Transitive fixpoint: iterate until no fact changes. The graph is
	// small (one repository), so a simple round-robin sweep suffices.
	units := p.Units()
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			f := fs.ensure(u.Key)
			for _, cs := range u.calls {
				g := fs.get(cs.Callee)
				// MayAcquire
				for _, cls := range g.Acquires {
					changed = addString(&f.MayAcquire, cls) || changed
				}
				for _, cls := range g.MayAcquire {
					changed = addString(&f.MayAcquire, cls) || changed
				}
				// NeverReturns
				if (g.NeverReturns || g.InescapableLoop) && !f.NeverReturns {
					f.NeverReturns = true
					changed = true
				}
				// Mutation effects seen through the call: classify the
				// mutated operand in the caller's frame.
				if mutationPropagates(u, cs, g, f) {
					changed = true
				}
				if g.MutatesStored && !f.MutatesStored {
					f.MutatesStored = true
					changed = true
				}
			}
			for _, cls := range f.Acquires {
				changed = addString(&f.MayAcquire, cls) || changed
			}
			if f.InescapableLoop && !f.NeverReturns {
				f.NeverReturns = true
				changed = true
			}
		}
	}
	for _, f := range fs.Funcs {
		sort.Strings(f.MayAcquire)
		sort.Ints(f.MutatesParams)
	}
	p.facts = fs
	return fs
}

// addString inserts s into the sorted-insensitive set *dst, reporting
// whether it was new.
func addString(dst *[]string, s string) bool {
	for _, v := range *dst {
		if v == s {
			return false
		}
	}
	*dst = append(*dst, s)
	return true
}

func addInt(dst *[]int, n int) bool {
	for _, v := range *dst {
		if v == n {
			return false
		}
	}
	*dst = append(*dst, n)
	return true
}

// operandKind classifies the expression a mutation lands on, from the
// perspective of the enclosing function.
type operandKind int

const (
	opkLocal  operandKind = iota // a local variable: invisible to callers
	opkRecv                      // the enclosing method's receiver
	opkParam                     // one of the enclosing function's parameters
	opkStored                    // reached through fields/containers/calls: stored state
)

// classifyOperand maps the mutated expression to the enclosing
// function's frame. paramIdx is valid only for opkParam.
func classifyOperand(u *FuncUnit, e ast.Expr) (operandKind, int) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		obj := u.Pkg.Info.Uses[id]
		if obj == nil {
			obj = u.Pkg.Info.Defs[id]
		}
		if obj == nil {
			return opkStored, 0
		}
		sig := u.Fn.Signature()
		if recv := sig.Recv(); recv != nil && obj == recv {
			return opkRecv, 0
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if obj == sig.Params().At(i) {
				return opkParam, i
			}
		}
		return opkLocal, 0
	}
	// Selector chains rooted at a plain variable still reach storage the
	// caller can see only through that variable's fields → stored state.
	// Index expressions, call results, composite literals: stored.
	return opkStored, 0
}

// mutationPropagates folds one callee's mutation facts into the caller,
// classifying the mutated operands in the caller's frame. Returns true
// when the caller's facts changed.
func mutationPropagates(u *FuncUnit, cs CallSite, g *FuncFacts, f *FuncFacts) bool {
	changed := false
	apply := func(e ast.Expr) {
		switch kind, idx := classifyOperand(u, e); kind {
		case opkRecv:
			// Only meaningful when the receiver itself is the mutated
			// relation (relation-package methods); elsewhere a method
			// mutating "its receiver's relation" goes through a field
			// and classifies as stored.
			if !f.MutatesRecv {
				f.MutatesRecv = true
				changed = true
			}
		case opkParam:
			changed = addInt(&f.MutatesParams, idx) || changed
		case opkStored:
			if !f.MutatesStored {
				f.MutatesStored = true
				changed = true
			}
		}
	}
	if g.MutatesRecv {
		if sel, ok := ast.Unparen(cs.Call.Fun).(*ast.SelectorExpr); ok {
			apply(sel.X)
		}
	}
	for _, idx := range g.MutatesParams {
		if idx < len(cs.Call.Args) {
			apply(cs.Call.Args[idx])
		}
	}
	return changed
}

// hasInescapableLoop reports whether body contains a `for {}` (no
// condition) loop with no way out: no break bound to it, no return, no
// goto, no terminating call inside. Nested function literals are
// separate functions and are skipped.
func hasInescapableLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopEscapes(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopEscapes reports whether an infinite for loop has any exit: a
// return, a break targeting it (directly or by label), a goto, or a
// terminating call. The check is generous — any of these counts — so a
// missing exit is a high-confidence finding.
func loopEscapes(loop *ast.ForStmt) bool {
	// A labeled break is accepted without resolving the label: it can
	// only target an enclosing statement, and escaping to an enclosing
	// scope leaves this loop too.
	escapes := false
	// depth counts enclosing breakable statements between the loop body
	// and the current node; an unlabeled break with depth 0 exits loop.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if escapes || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				escapes = true // a goto target inside the loop would be
				// unusual; treat any goto as an exit (anti-flag bias)
			case token.BREAK:
				if n.Label != nil || depth == 0 {
					escapes = true
				}
			}
		case *ast.ExprStmt:
			if isTerminatingCall(n.X) {
				escapes = true
			}
		case *ast.ForStmt:
			walkList(n.Body.List, depth+1, walk)
		case *ast.RangeStmt:
			walkList(n.Body.List, depth+1, walk)
		case *ast.SwitchStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.TypeSwitchStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.SelectStmt:
			walkBody(n.Body, depth+1, walk)
		case *ast.BlockStmt:
			walkList(n.List, depth, walk)
		case *ast.IfStmt:
			walk(n.Body, depth)
			walk(n.Else, depth)
		case *ast.LabeledStmt:
			walk(n.Stmt, depth)
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred/launched bodies do not alter this loop's exits.
		default:
			// Plain statements cannot exit the loop.
		}
	}
	walkList(loop.Body.List, 0, walk)
	return escapes
}

func walkList(list []ast.Stmt, depth int, walk func(ast.Node, int)) {
	for _, s := range list {
		walk(s, depth)
	}
}

func walkBody(body *ast.BlockStmt, depth int, walk func(ast.Node, int)) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			walkList(c.Body, depth, walk)
		case *ast.CommClause:
			walkList(c.Body, depth, walk)
		}
	}
}

// waitsOnDone reports whether the body receives from a channel (unary
// <-, a select comm clause, or ranging a channel) or checks ctx.Done /
// ctx.Err — the signals a well-behaved goroutine shuts down on.
func waitsOnDone(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// funcFactsEqual is used by the round-trip tests.
func funcFactsEqual(a, b *FuncFacts) bool {
	eqs := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqi := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eqs(a.Acquires, b.Acquires) && eqs(a.MayAcquire, b.MayAcquire) &&
		a.MutatesRecv == b.MutatesRecv && eqi(a.MutatesParams, b.MutatesParams) &&
		a.MutatesStored == b.MutatesStored && a.InescapableLoop == b.InescapableLoop &&
		a.NeverReturns == b.NeverReturns && a.WaitsOnDone == b.WaitsOnDone
}
