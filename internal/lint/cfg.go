package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer of the dataflow framework
// (DESIGN.md §15): a per-function CFG over statements, shared by every
// path-sensitive analyzer (spanend's End-on-every-path check, the
// lockorder held-set dataflow, batchlife's live ranges). Building it
// once per function replaces the per-analyzer ad-hoc traversals that
// each re-invented return-path walking.

// CFG is the control-flow graph of one function body. Blocks hold the
// statements executed straight-line; edges are the possible successors.
// Nested function literals are NOT part of their enclosing function's
// CFG — each literal is its own analysis unit with its own graph.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the single synthetic exit block: every return, every
	// terminating call (panic, os.Exit) and the fall-off-the-end point
	// has an edge to it. Exit holds no statements.
	Exit *Block
	// Defers lists every defer statement in the body, in source order.
	// Deferred calls run at function exit; analyses that model them
	// (spanend, lock release) read this list instead of the blocks.
	Defers []*ast.DeferStmt
}

// Block is one straight-line sequence of statements.
type Block struct {
	Index int
	// Stmts holds the block's statements in execution order. Control
	// statements (if/for/switch/...) do not appear themselves; their
	// init/condition expressions are wrapped in the preceding block and
	// their bodies become separate blocks.
	Stmts []ast.Node
	Succs []*Block
}

// cfgBuilder carries the state of one build.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loops is the stack of enclosing loops (and labeled switches) for
	// continue and labeled-break targets.
	loops []loopFrame
	// breakStack is the stack of every enclosing breakable statement —
	// for, range, switch, type switch, select — for unlabeled break.
	breakStack []*Block
	// labels maps a label name to its blocks once seen; gotos to labels
	// not yet built are patched at the end.
	labels       map[string]*Block
	pendingGotos map[string][]*Block
}

type loopFrame struct {
	label string
	post  *Block // continue target
	after *Block // break target
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:          &CFG{},
		labels:       make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	entry := b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = entry
	b.stmts(body.List)
	// Falling off the end reaches the exit.
	b.edge(b.cur, b.cfg.Exit)
	// Unresolved gotos (labels in dead code, or malformed input the
	// type-checker would reject) conservatively reach the exit.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, b.cfg.Exit)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge adds from→to once.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock seals cur with an edge into next and makes next current.
func (b *cfgBuilder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt appends one statement to the graph. label is the pending label
// for the statement (set when reached through a LabeledStmt).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so gotos can land
		// on it; loops additionally use the label for break/continue.
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		for _, src := range b.pendingGotos[s.Label.Name] {
			b.edge(src, target)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.cur.Stmts = append(b.cur.Stmts, s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: s.Cond})
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		after := b.newBlock()
		b.edge(thenEnd, after)
		if s.Else != nil {
			b.edge(elseEnd, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
		}
		post := b.newBlock() // continue lands here
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopFrame{label: label, post: post, after: after})
		b.breakStack = append(b.breakStack, after)
		b.stmts(s.Body.List)
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		// The ranged expression is evaluated once, in the current block.
		b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: s.X})
		head := b.newBlock()
		b.startBlock(head)
		after := b.newBlock()
		b.edge(head, after) // every range can be empty / exhausted
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.loops = append(b.loops, loopFrame{label: label, post: head, after: after})
		b.breakStack = append(b.breakStack, after)
		b.stmts(s.Body.List)
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body, label, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			tag = as.Rhs[0]
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			tag = es.X
		}
		b.switchLike(s.Init, tag, s.Body, label, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breakStack = append(b.breakStack, after)
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		// select{} has no clauses: no edge out of head — it blocks
		// forever and the after block stays unreachable.
		b.cur = after

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if isTerminatingCall(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = b.newBlock()
		}

	default:
		// Assignments, sends, go statements, declarations, inc/dec:
		// straight-line, no control flow of their own.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// switchLike builds (type-)switch control flow: head → every case body
// → after; head → after unless a default clause covers all inputs.
// Fallthrough chains case bodies in source order.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string, hasDefault bool) {
	if init != nil {
		b.cur.Stmts = append(b.cur.Stmts, init)
	}
	if tag != nil {
		b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: tag})
	}
	head := b.cur
	after := b.newBlock()
	b.breakStack = append(b.breakStack, after)
	// A labeled switch also resolves labeled breaks; model it as a
	// zero-iteration loop frame whose continue target is unreachable.
	if label != "" {
		b.loops = append(b.loops, loopFrame{label: label, post: nil, after: after})
	}
	var caseBlocks []*Block
	var caseEnds []*Block
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		for _, e := range cc.List {
			blk.Stmts = append(blk.Stmts, &ast.ExprStmt{X: e})
		}
		b.cur = blk
		b.stmts(cc.Body)
		caseBlocks = append(caseBlocks, blk)
		caseEnds = append(caseEnds, b.cur)
		b.edge(b.cur, after)
	}
	// Fallthrough: the end of case i flows into the start of case i+1
	// when the clause ends in a fallthrough statement.
	for i := 0; i+1 < len(caseEnds); i++ {
		if fallsThrough(body.List[i]) {
			b.edge(caseEnds[i], caseBlocks[i+1])
		}
	}
	if label != "" {
		b.loops = b.loops[:len(b.loops)-1]
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// branch wires break/continue/goto/fallthrough edges.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == s.Label.Name {
					target = b.loops[i].after
					break
				}
			}
		} else if n := len(b.breakStack); n > 0 {
			target = b.breakStack[n-1]
		}
		b.edge(b.cur, target)
		b.cur = b.newBlock()
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == s.Label.Name {
					target = b.loops[i].post
					break
				}
			}
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].post != nil {
					target = b.loops[i].post
					break
				}
			}
		}
		b.edge(b.cur, target)
		b.cur = b.newBlock()
	case token.GOTO:
		if s.Label != nil {
			if target, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur)
			}
		}
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		// Edges are added by switchLike via fallsThrough; the statement
		// ends the clause.
		b.cur = b.newBlock()
	}
}

// hasDefaultClause reports whether a switch body contains default:.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// fallsThrough reports whether a case clause ends in fallthrough.
func fallsThrough(clause ast.Stmt) bool {
	cc, ok := clause.(*ast.CaseClause)
	if !ok || len(cc.Body) == 0 {
		return false
	}
	br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall reports whether the expression is a call that never
// returns: panic(...) or os.Exit(...). (log.Fatal variants are not used
// in this repository's library code.)
func isTerminatingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// EveryPathReaches reports whether every path from (start block, node
// index from) to the CFG exit passes a node satisfying pred before
// reaching the exit. Cycles that never reach the exit vacuously satisfy
// the property (a path that never returns never needs the event).
func (c *CFG) EveryPathReaches(start *Block, from int, pred func(ast.Node) bool) bool {
	memo := make(map[*Block]int8) // 0 unseen, 1 in-progress/true, 2 false
	var covered func(b *Block, idx int) bool
	covered = func(b *Block, idx int) bool {
		if b == c.Exit {
			return false
		}
		if idx == 0 {
			switch memo[b] {
			case 1:
				return true
			case 2:
				return false
			}
			memo[b] = 1 // in-progress: back-edges assume covered
		}
		ok := false
		for i := idx; i < len(b.Stmts); i++ {
			if pred(b.Stmts[i]) {
				ok = true
				break
			}
		}
		if !ok {
			if len(b.Succs) == 0 {
				// Dead end that is not the exit: a blocked-forever
				// point (select{}); no path to exit exists.
				ok = true
			} else {
				ok = true
				for _, s := range b.Succs {
					if !covered(s, 0) {
						ok = false
						break
					}
				}
			}
		}
		if idx == 0 {
			if ok {
				memo[b] = 1
			} else {
				memo[b] = 2
			}
		}
		return ok
	}
	return covered(start, from)
}
