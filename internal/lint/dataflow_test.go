package lint

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFactsRoundTrip: the fact set of a real program survives
// Encode/Decode bit-for-bit — the contract that lets a driver export
// facts from one run and import them into another.
func TestFactsRoundTrip(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgram(pkgs)
	facts := p.Facts()

	var buf bytes.Buffer
	if err := facts.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeFacts(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded.Funcs) != len(facts.Funcs) {
		t.Fatalf("decoded %d entries, want %d", len(decoded.Funcs), len(facts.Funcs))
	}
	for k, f := range facts.Funcs {
		g, ok := decoded.Funcs[k]
		if !ok {
			t.Errorf("decoded facts missing %s", k)
			continue
		}
		if !funcFactsEqual(f, g) {
			t.Errorf("facts for %s changed across round trip: %+v vs %+v", k, f, g)
		}
	}
	// Encoding the decoded set reproduces the stream (determinism).
	var buf2 bytes.Buffer
	if err := decoded.Encode(&buf2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	var buf1 bytes.Buffer
	if err := facts.Encode(&buf1); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("Encode is not deterministic across a round trip")
	}
}

// TestFactsComputed: the interprocedural properties the analyzers rely
// on are actually derived on the lockorder fixture.
func TestFactsComputed(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	facts := NewProgram(pkgs).Facts()
	const pkg = "dwcomplement/internal/lint/testdata/src/lockorder"
	seq := facts.get("(*" + pkg + ".Src).Seq")
	if len(seq.Acquires) != 1 || seq.Acquires[0] != "lockorder.Src.mu" {
		t.Errorf("Src.Seq acquires = %v, want [lockorder.Src.mu]", seq.Acquires)
	}
	apply := facts.get("(*" + pkg + ".Src).Apply")
	found := false
	for _, c := range apply.MayAcquire {
		if c == "lockorder.Server.mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("Src.Apply MayAcquire = %v, want to include lockorder.Server.mu (via Notify)", apply.MayAcquire)
	}
	// Seeds are merged into every computed set.
	if !facts.get("net/http.ListenAndServe").NeverReturns {
		t.Error("seed fact for net/http.ListenAndServe missing")
	}
}

// TestApplyFixes: suggested fixes land atomically, dry-run leaves the
// file untouched, and re-running on the fixed source is a no-op
// (idempotency — the property CI checks with `dwlint -fix -dry-run`).
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	src := "package p\n\nfunc f() {\n\tstart()\n\twork()\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	insertAt := strings.Index(src, "start()") + len("start()")
	mkDiag := func() Diagnostic {
		d := Diagnostic{Analyzer: "spanend", Message: "not ended"}
		d.Pos.Filename = path
		d.Fix = &SuggestedFix{Message: "insert defer", Edits: []TextEdit{{NewText: "\n\tdefer end()"}}}
		d.Fix.Edits[0].Pos.Filename = path
		d.Fix.Edits[0].Pos.Offset = insertAt
		d.Fix.Edits[0].End.Filename = path
		d.Fix.Edits[0].End.Offset = insertAt
		return d
	}

	// Dry run: content computed, file unchanged.
	changed, fixed, err := ApplyFixes([]Diagnostic{mkDiag()}, true)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 || len(changed) != 1 {
		t.Fatalf("dry-run: fixed=%d changed=%d, want 1/1", fixed, len(changed))
	}
	if got, _ := os.ReadFile(path); string(got) != src {
		t.Fatal("dry-run modified the file")
	}

	// Real run.
	changed, fixed, err = ApplyFixes([]Diagnostic{mkDiag()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("fixed = %d, want 1", fixed)
	}
	want := "package p\n\nfunc f() {\n\tstart()\n\tdefer end()\n\twork()\n}\n"
	got, _ := os.ReadFile(path)
	if string(got) != want {
		t.Fatalf("fixed content:\n%s\nwant:\n%s", got, want)
	}
	if string(changed[path]) != want {
		t.Fatal("returned content differs from written content")
	}
}

// TestApplyFixesOverlap: conflicting edits do not corrupt the file —
// the first wins, the overlap is dropped.
func TestApplyFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	edit := func(start, end int, text string) Diagnostic {
		d := Diagnostic{Analyzer: "x", Message: "m"}
		d.Fix = &SuggestedFix{Edits: []TextEdit{{NewText: text}}}
		d.Fix.Edits[0].Pos.Filename = path
		d.Fix.Edits[0].Pos.Offset = start
		d.Fix.Edits[0].End.Filename = path
		d.Fix.Edits[0].End.Offset = end
		return d
	}
	changed, fixed, err := ApplyFixes([]Diagnostic{edit(1, 4, "X"), edit(2, 5, "Y")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Errorf("fixed = %d, want 1 (overlap dropped)", fixed)
	}
	if got := string(changed[path]); got != "aXef" {
		t.Errorf("content = %q, want %q", got, "aXef")
	}
}

// TestSpanEndCarriesFix: the spanend rewrite attaches the defer-End
// insertion that `dwlint -fix` applies.
func TestSpanEndCarriesFix(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/spanend")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{SpanEnd})
	withFix := 0
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		withFix++
		if len(d.Fix.Edits) != 1 || !strings.Contains(d.Fix.Edits[0].NewText, "defer ") ||
			!strings.Contains(d.Fix.Edits[0].NewText, ".End()") {
			t.Errorf("unexpected fix edit: %+v", d.Fix.Edits)
		}
		if d.Fix.Edits[0].Pos.Offset != d.Fix.Edits[0].End.Offset {
			t.Errorf("fix should be a pure insertion, got [%d,%d)", d.Fix.Edits[0].Pos.Offset, d.Fix.Edits[0].End.Offset)
		}
	}
	if withFix == 0 {
		t.Fatal("no spanend diagnostic carries a suggested fix")
	}
}

// TestCatalog: the analyzer catalog covers all eight checks — the
// interprocedural trio included — so TestRepoClean and CI gate on the
// full set.
func TestCatalog(t *testing.T) {
	want := []string{"batchlife", "evalctx", "goleak", "lockdiscipline", "lockorder", "planops", "senterr", "spanend"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no doc line", a.Name)
		}
	}
}

// TestCFGEveryPathReaches exercises the shared CFG on shapes the
// analyzers rely on: branch joins, loops, and terminating calls.
func TestCFGEveryPathReaches(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/spanend")
	if err != nil {
		t.Fatal(err)
	}
	// The spanend fixture's pass/fail cases already pivot on
	// EveryPathReaches through TestSpanEnd; here check graph shape
	// invariants on every function of the fixture.
	prog := NewProgram(pkgs)
	for _, u := range prog.Units() {
		cfg := BuildCFG(u.Decl.Body)
		if len(cfg.Blocks) == 0 {
			t.Fatalf("%s: empty CFG", u.Key)
		}
		if cfg.Exit != cfg.Blocks[len(cfg.Blocks)-1] {
			t.Errorf("%s: exit is not the last block", u.Key)
		}
		if len(cfg.Exit.Succs) != 0 {
			t.Errorf("%s: exit has successors", u.Key)
		}
		for _, b := range cfg.Blocks {
			for _, s := range b.Succs {
				if s.Index < 0 || s.Index >= len(cfg.Blocks) || cfg.Blocks[s.Index] != s {
					t.Errorf("%s: block %d has dangling successor", u.Key, b.Index)
				}
			}
		}
		// The trivial predicate holds vacuously... only when every path
		// is covered; the never-true predicate can only hold for bodies
		// that never reach the exit.
		always := cfg.EveryPathReaches(cfg.Blocks[0], 0, func(n ast.Node) bool { return true })
		if !always && len(cfg.Blocks[0].Stmts) > 0 {
			t.Errorf("%s: always-true predicate not satisfied", u.Key)
		}
	}
}
