package lint

import (
	"regexp"
	"strings"
	"testing"
)

// testAnalyzer loads ./testdata/src/<fixture>, runs one analyzer, and
// matches its diagnostics against the fixture's `// want "substr"`
// comments: every want must be satisfied on its line, and no diagnostic
// may appear without one.
func testAnalyzer(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	type want struct {
		line    int
		substr  string
		matched bool
	}
	re := regexp.MustCompile(`// want "([^"]*)"`)
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := re.FindStringSubmatch(c.Text); m != nil {
					wants = append(wants, &want{line: pkg.Fset.Position(c.Pos()).Line, substr: m[1]})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", fixture)
	}

	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at line %d containing %q", w.line, w.substr)
		}
	}
}

func TestLockDiscipline(t *testing.T) { testAnalyzer(t, LockDiscipline, "lockdiscipline") }
func TestEvalCtx(t *testing.T)        { testAnalyzer(t, EvalCtxAnalyzer, "evalctx") }
func TestPlanOps(t *testing.T)        { testAnalyzer(t, PlanOps, "planops") }
func TestSentErr(t *testing.T)        { testAnalyzer(t, SentErr, "senterr") }
func TestSpanEnd(t *testing.T)        { testAnalyzer(t, SpanEnd, "spanend") }
func TestLockOrder(t *testing.T)      { testAnalyzer(t, LockOrder, "lockorder") }
func TestGoLeak(t *testing.T)         { testAnalyzer(t, GoLeak, "goleak") }
func TestBatchLife(t *testing.T)      { testAnalyzer(t, BatchLife, "batchlife") }

func TestByName(t *testing.T) {
	as, err := ByName([]string{"senterr", "planops"})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "senterr" || as[1].Name != "planops" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

// TestRepoClean is the acceptance gate: the repository's own packages
// must pass every analyzer. This is the same check CI runs via
// `dwlint ./...`, kept in-tree so plain `go test ./...` catches
// regressions too.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
