package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns relative to dir, compiles
// export data for every dependency (via `go list -export -deps`), and
// parses + type-checks each matched package from source. It is stdlib
// only: the type-checker imports dependencies through the gc importer
// reading the build-cache export files that go list reports.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if e.DepOnly {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", e.ImportPath, e.Error.Err)
		}
		targets = append(targets, e)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	pkgs := make([]*Package, 0, len(targets))
	for _, e := range targets {
		files := make([]*ast.File, 0, len(e.GoFiles))
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: e.ImportPath,
			Dir:     e.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
