package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EvalCtxAnalyzer enforces the repo's evaluation-context discipline:
// the context-free convenience wrappers (algebra.Eval, PSJ.Eval,
// Warehouse.Answer, Maintainer.Refresh, ...) exist for the public facade
// and commands; library code under internal/ must call the context-aware
// variants so cancellation and instrumentation propagate end to end.
var EvalCtxAnalyzer = &Analyzer{
	Name: "evalctx",
	Doc:  "internal/ code must use context-aware Eval/Answer/Refresh variants, not the context-free facade wrappers",
	Run:  runEvalCtx,
}

// contextFreeWrappers lists the forbidden wrappers: defining package
// path, receiver type name ("" for package-level functions), function
// name, and the context-aware alternative to suggest.
var contextFreeWrappers = []struct {
	pkg, recv, name, alt string
}{
	{"dwcomplement/internal/algebra", "", "Eval", "EvalCtx"},
	{"dwcomplement/internal/algebra", "", "MustEval", "EvalCtx"},
	{"dwcomplement/internal/view", "PSJ", "Eval", "EvalCtx"},
	{"dwcomplement/internal/view", "Set", "Eval", "EvalCtx"},
	{"dwcomplement/internal/warehouse", "Warehouse", "Answer", "AnswerContext"},
	{"dwcomplement/internal/maintain", "Maintainer", "Refresh", "RefreshContext"},
	{"dwcomplement/internal/core", "Complement", "MaterializeWarehouse", "MaterializeWarehouseCtx"},
	{"dwcomplement/internal/core", "Complement", "Reconstruct", "ReconstructCtx"},
	// The net/http convenience calls carry no context, so a remote
	// source that stops responding would hang library code forever.
	// internal/remote (and any other internal package talking HTTP)
	// must build requests with http.NewRequestWithContext so the
	// per-attempt deadlines and breaker-driven cancellation propagate.
	{"net/http", "", "Get", "NewRequestWithContext + Client.Do"},
	{"net/http", "", "Post", "NewRequestWithContext + Client.Do"},
	{"net/http", "", "PostForm", "NewRequestWithContext + Client.Do"},
	{"net/http", "", "Head", "NewRequestWithContext + Client.Do"},
	{"net/http", "", "NewRequest", "NewRequestWithContext"},
	{"net/http", "Client", "Get", "NewRequestWithContext + Client.Do"},
	{"net/http", "Client", "Post", "NewRequestWithContext + Client.Do"},
	{"net/http", "Client", "PostForm", "NewRequestWithContext + Client.Do"},
	{"net/http", "Client", "Head", "NewRequestWithContext + Client.Do"},
}

func runEvalCtx(pass *Pass) {
	// Only library code is constrained; the facade, commands, and the
	// wrappers' own packages may call the context-free forms.
	if !strings.Contains(pass.Pkg.PkgPath, "/internal/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.PkgPath {
				return true
			}
			recv := receiverName(fn)
			for _, w := range contextFreeWrappers {
				if fn.Pkg().Path() == w.pkg && fn.Name() == w.name && recv == w.recv {
					what := w.name
					if w.recv != "" {
						what = w.recv + "." + w.name
					}
					pass.Reportf(call.Pos(),
						"call to context-free %s.%s from library code; use %s so cancellation and stats propagate",
						shortPkg(w.pkg), what, w.alt)
					break
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the called *types.Func of a call, or nil for
// builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// receiverName returns the named type of a method's receiver (sans
// pointer), or "" for package-level functions.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// shortPkg trims an import path to its last element for messages.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
