package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EvalCtxAnalyzer enforces the repo's facade-vs-library discipline: the
// context-free convenience wrappers (algebra.Eval, PSJ.Eval,
// Warehouse.Answer, Maintainer.Refresh, ...) and the deprecated row-copy
// accessors (Relation.Each, Relation.Tuples) exist for the public facade,
// commands and tests; library code under internal/ must call the
// context-aware variants so cancellation and instrumentation propagate
// end to end, and the iterator accessors so the hot paths stay
// allocation-free.
var EvalCtxAnalyzer = &Analyzer{
	Name: "evalctx",
	Doc:  "internal/ code must use context-aware Eval/Answer/Refresh variants and non-deprecated accessors, not the facade wrappers",
	Run:  runEvalCtx,
}

// Why a wrapper is banned from library code; the reason selects the
// diagnostic wording.
const (
	reasonContextFree = "context-free"
	reasonDeprecated  = "deprecated"
)

// bannedWrappers lists the forbidden wrappers: defining package path,
// receiver type name ("" for package-level functions), function name, the
// alternative to suggest, and the reason wording. An empty reason means
// context-free.
var bannedWrappers = []struct {
	pkg, recv, name, alt, reason string
}{
	{"dwcomplement/internal/algebra", "", "Eval", "EvalCtx", reasonContextFree},
	{"dwcomplement/internal/algebra", "", "MustEval", "EvalCtx", reasonContextFree},
	{"dwcomplement/internal/view", "PSJ", "Eval", "EvalCtx", reasonContextFree},
	{"dwcomplement/internal/view", "Set", "Eval", "EvalCtx", reasonContextFree},
	{"dwcomplement/internal/warehouse", "Warehouse", "Answer", "AnswerContext", reasonContextFree},
	{"dwcomplement/internal/maintain", "Maintainer", "Refresh", "RefreshContext", reasonContextFree},
	{"dwcomplement/internal/core", "Complement", "MaterializeWarehouse", "MaterializeWarehouseCtx", reasonContextFree},
	{"dwcomplement/internal/core", "Complement", "Reconstruct", "ReconstructCtx", reasonContextFree},
	// Relation.Each and Relation.Tuples predate the iterator and batch
	// cursors; they survive as thin wrappers for external callers, but
	// library code must range over All() (row-major, no copies) or
	// Batches() (column-major).
	{"dwcomplement/internal/relation", "Relation", "Each", "range All() or Batches()", reasonDeprecated},
	{"dwcomplement/internal/relation", "Relation", "Tuples", "range All(), or SortedTuples for deterministic copies", reasonDeprecated},
	// The net/http convenience calls carry no context, so a remote
	// source that stops responding would hang library code forever.
	// internal/remote (and any other internal package talking HTTP)
	// must build requests with http.NewRequestWithContext so the
	// per-attempt deadlines and breaker-driven cancellation propagate.
	{"net/http", "", "Get", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "", "Post", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "", "PostForm", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "", "Head", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "", "NewRequest", "NewRequestWithContext", reasonContextFree},
	{"net/http", "Client", "Get", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "Client", "Post", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "Client", "PostForm", "NewRequestWithContext + Client.Do", reasonContextFree},
	{"net/http", "Client", "Head", "NewRequestWithContext + Client.Do", reasonContextFree},
}

func runEvalCtx(pass *Pass) {
	// Only library code is constrained; the facade, commands, and the
	// wrappers' own packages may call the context-free forms.
	if !strings.Contains(pass.Pkg.PkgPath, "/internal/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.PkgPath {
				return true
			}
			recv := receiverName(fn)
			for _, w := range bannedWrappers {
				if fn.Pkg().Path() == w.pkg && fn.Name() == w.name && recv == w.recv {
					what := w.name
					if w.recv != "" {
						what = w.recv + "." + w.name
					}
					switch w.reason {
					case reasonDeprecated:
						pass.Reportf(call.Pos(),
							"call to deprecated %s.%s from library code; use %s",
							shortPkg(w.pkg), what, w.alt)
					default:
						pass.Reportf(call.Pos(),
							"call to context-free %s.%s from library code; use %s so cancellation and stats propagate",
							shortPkg(w.pkg), what, w.alt)
					}
					break
				}
			}
			return true
		})
	}
}

// calleeFunc resolves the called *types.Func of a call, or nil for
// builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// receiverName returns the named type of a method's receiver (sans
// pointer), or "" for package-level functions.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// shortPkg trims an import path to its last element for messages.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
