// Package lint is a dependency-free static-analysis framework for this
// repository: Layer 1 of the dwvet subsystem (see DESIGN.md §10). It
// loads and type-checks packages using only the standard library
// (go/parser + go/types, with export data produced by `go list -export`),
// runs a small catalog of analyzers encoding invariants this codebase
// relies on, and reports diagnostics with positions.
//
// The analyzers:
//
//   - lockdiscipline: no write to a mutex-guarded struct field while only
//     the read lock is held (the PR-2 dwserve data-race class);
//   - evalctx: library code under internal/ must call the context-aware
//     evaluation entry points, never the context-free wrappers reserved
//     for the public facade;
//   - planops: operator dispatch over algebra.Expr must be exhaustive, so
//     flat stats and plan trees cannot silently drift when an operator
//     kind is added;
//   - senterr: error messages describing sentinel conditions must wrap
//     the sentinel errors so errors.Is works across the public API;
//   - spanend: every span started via internal/trace must be finished
//     with End (deferred, or called before every return), or the trace
//     silently loses the instrumented operation.
//
// A diagnostic can be suppressed with a directive comment on the flagged
// line or the line above it:
//
//	//dwlint:ignore <analyzer>[,<analyzer>...] [reason]
//	//dwlint:ignore all [reason]
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-line description for `dwlint -list`.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer run over one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the analyzer catalog in stable order.
func All() []*Analyzer {
	return []*Analyzer{EvalCtxAnalyzer, LockDiscipline, PlanOps, SentErr, SpanEnd}
}

// ByName resolves analyzer names (comma-separated lists accepted by the
// driver) against the catalog.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package, filters diagnostics through
// the //dwlint:ignore directives, and returns the findings sorted by
// position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) {
				if ig.suppresses(a.Name, d.Pos) {
					return
				}
				all = append(all, d)
			}}
			a.Run(pass)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// ignoreSet maps file → line → analyzer names suppressed on that line.
type ignoreSet map[string]map[int]map[string]bool

// suppresses reports whether a diagnostic of the named analyzer at pos is
// covered by a directive on its line or the line above.
func (ig ignoreSet) suppresses(analyzer string, pos token.Position) bool {
	lines := ig[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[ln]; names != nil && (names["all"] || names[analyzer]) {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment of the package for ignore directives.
func collectIgnores(pkg *Package) ignoreSet {
	ig := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dwlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ig[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ig[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return ig
}
