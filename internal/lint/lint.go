// Package lint is a dependency-free static-analysis framework for this
// repository: Layer 1 of the dwvet subsystem (see DESIGN.md §10). It
// loads and type-checks packages using only the standard library
// (go/parser + go/types, with export data produced by `go list -export`),
// runs a small catalog of analyzers encoding invariants this codebase
// relies on, and reports diagnostics with positions.
//
// The analyzers:
//
//   - lockdiscipline: no write to a mutex-guarded struct field while only
//     the read lock is held (the PR-2 dwserve data-race class);
//   - evalctx: library code under internal/ must call the context-aware
//     evaluation entry points, never the context-free wrappers reserved
//     for the public facade;
//   - planops: operator dispatch over algebra.Expr must be exhaustive, so
//     flat stats and plan trees cannot silently drift when an operator
//     kind is added;
//   - senterr: error messages describing sentinel conditions must wrap
//     the sentinel errors so errors.Is works across the public API;
//   - spanend: every span started via internal/trace must be finished
//     with End (deferred, or called before every return), or the trace
//     silently loses the instrumented operation;
//   - lockorder: the repo-wide mutex acquisition-order graph (built
//     across call edges from the Facts store) must be acyclic — a cycle
//     is a potential deadlock (the PR-5 handleResend inversion class);
//   - goleak: goroutines must have a shutdown path — no inescapable
//     `for {}` loops, no calls to unstoppable listeners;
//   - batchlife: no mutation or refresh of a relation while a Batch
//     window over it is live (the PR-6 use-after-invalidate class).
//
// The last three are interprocedural: they run over the dataflow layer
// (cfg.go, callgraph.go, facts.go) that Pass.Prog exposes.
//
// A diagnostic can be suppressed with a directive comment on the flagged
// line or the line above it:
//
//	//dwlint:ignore <analyzer>[,<analyzer>...] [reason]
//	//dwlint:ignore all [reason]
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-line description for `dwlint -list`.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer run over one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-program view shared by every pass of one Run
	// call; the interprocedural analyzers read the call graph and facts
	// through it.
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic carrying a suggested fix the driver
// can apply with -fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Edit builds a TextEdit replacing [start, end) with newText, resolving
// the positions so fixes can be applied without the FileSet.
func (p *Pass) Edit(start, end token.Pos, newText string) TextEdit {
	return TextEdit{
		Pos:     p.Pkg.Fset.Position(start),
		End:     p.Pkg.Fset.Position(end),
		NewText: newText,
	}
}

// Diagnostic is one analyzer finding. The JSON shape is the `-json`
// driver output consumed by CI.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Fix      *SuggestedFix  `json:"fix,omitempty"`
}

// SuggestedFix is a concrete remediation: text edits the driver applies
// atomically per file under -fix.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces the source range [Pos.Offset, End.Offset) of the
// file Pos.Filename with NewText. An insertion has Pos == End.
type TextEdit struct {
	Pos     token.Position `json:"pos"`
	End     token.Position `json:"end"`
	NewText string         `json:"newText"`
}

// String renders "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the analyzer catalog in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchLife,
		EvalCtxAnalyzer,
		GoLeak,
		LockDiscipline,
		LockOrder,
		PlanOps,
		SentErr,
		SpanEnd,
	}
}

// ByName resolves analyzer names (comma-separated lists accepted by the
// driver) against the catalog.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package, filters diagnostics through
// the //dwlint:ignore directives, and returns the findings sorted by
// position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, report: func(d Diagnostic) {
				if ig.suppresses(a.Name, d.Pos) {
					return
				}
				all = append(all, d)
			}}
			a.Run(pass)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// ignoreSet maps file → line → analyzer names suppressed on that line.
type ignoreSet map[string]map[int]map[string]bool

// suppresses reports whether a diagnostic of the named analyzer at pos is
// covered by a directive on its line or the line above.
func (ig ignoreSet) suppresses(analyzer string, pos token.Position) bool {
	lines := ig[pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if names := lines[ln]; names != nil && (names["all"] || names[analyzer]) {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment of the package for ignore directives.
func collectIgnores(pkg *Package) ignoreSet {
	ig := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dwlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ig[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ig[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[pos.Line] = names
				}
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
			}
		}
	}
	return ig
}
