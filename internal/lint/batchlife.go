package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BatchLife flags the PR-6 use-after-invalidate class: a
// relation.Batch is a zero-copy window into the relation's columnar
// image, valid only until the next mutation. Ranging X.Batches() while
// calling anything that — per the cross-package facts — mutates X (or
// refreshes stored relations wholesale) leaves the iteration reading
// freed or rebuilt column memory. The same applies to a Batch value
// that escapes its loop and is used after a later invalidating call.
//
// A mutation of an unrelated relation (the fresh output relation of an
// operator like SelectBatchStats) is fine: the check requires the
// mutated operand to be derivation-related to the iteration's origin,
// except for MutatesStored callees (refresh-class entry points), which
// invalidate every stored relation.
var BatchLife = &Analyzer{
	Name: "batchlife",
	Doc:  "no mutation of a relation while a Batch window over it is live",
	Run:  runBatchLife,
}

func runBatchLife(pass *Pass) {
	facts := pass.Prog.Facts()
	for _, u := range pass.Prog.Units() {
		if u.Pkg != pass.Pkg {
			continue
		}
		checkBatchLife(pass, u, facts)
	}
}

// batchOrigin is one live Batches() iteration.
type batchOrigin struct {
	root types.Object // base variable of the ranged relation/rows expr
	iter types.Object // the iteration variable (the Batch), may be nil
	rng  *ast.RangeStmt
}

// escapedBatch is a Batch value assigned out of its iteration.
type escapedBatch struct {
	obj       types.Object
	origin    *batchOrigin
	assignEnd token.Pos
}

func checkBatchLife(pass *Pass, u *FuncUnit, facts *FactSet) {
	info := u.Pkg.Info
	deriv := derivations(u)
	var escaped []*escapedBatch

	// Walk with the stack of active iterations; flag invalidating calls
	// inside any live range and record Batch values that escape.
	var active []*batchOrigin
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			// Other-goroutine / other-function bodies have their own
			// iterations; calls there do not run inside this one.
			return false
		case *ast.RangeStmt:
			if org := batchesOrigin(info, n); org != nil {
				ast.Inspect(n.X, walk) // the ranged expr itself runs once, outside
				active = append(active, org)
				ast.Inspect(n.Body, walk)
				active = active[:len(active)-1]
				return false
			}
		case *ast.AssignStmt:
			// b escaping its loop: `saved = b` with saved declared anywhere.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				li, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := info.Defs[li]
				if lobj == nil {
					lobj = info.Uses[li]
				}
				rroot := rootObject(info, n.Rhs[i])
				if lobj == nil || rroot == nil {
					continue
				}
				for _, org := range active {
					if org.iter != nil && rroot == org.iter && lobj != org.iter {
						escaped = append(escaped, &escapedBatch{obj: lobj, origin: org, assignEnd: n.End()})
					}
				}
			}
		case *ast.CallExpr:
			if len(active) == 0 {
				return true
			}
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			f := facts.get(FuncKey(fn))
			for _, org := range active {
				if cause, ok := invalidates(info, deriv, n, fn, f, org.root); ok {
					pass.Reportf(n.Pos(),
						"Batch window invalidated: %s while ranging %s.Batches() — batches are read-only views into the columnar image, valid only until the next mutation; finish the iteration (or copy the rows) first",
						cause, objName(org.root))
					break
				}
			}
		}
		return true
	}
	ast.Inspect(u.Decl.Body, walk)

	// Escaped Batch values: an invalidating call after the loop followed
	// by a use of the value.
	for _, esc := range escaped {
		reportEscapedUse(pass, u, facts, deriv, esc)
	}
}

// batchesOrigin recognises `for b := range X.Batches()` and returns the
// origin, or nil.
func batchesOrigin(info *types.Info, rng *ast.RangeStmt) *batchOrigin {
	call, ok := ast.Unparen(rng.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Batches" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	root := rootObject(info, sel.X)
	if root == nil {
		return nil
	}
	org := &batchOrigin{root: root, rng: rng}
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		org.iter = info.Defs[id]
	}
	return org
}

// invalidates reports whether the call, per the callee's facts, mutates
// a relation related to origin root (or refreshes stored relations),
// with a human-readable cause.
func invalidates(info *types.Info, deriv map[types.Object]types.Object, call *ast.CallExpr, fn *types.Func, f *FuncFacts, origin types.Object) (string, bool) {
	if f.MutatesStored {
		return "call to " + shortFuncName(FuncKey(fn)) + " refreshes stored relations", true
	}
	if f.MutatesRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if related(deriv, rootObject(info, sel.X), origin) {
				return shortFuncName(FuncKey(fn)) + " mutates the ranged relation", true
			}
		}
	}
	for _, idx := range f.MutatesParams {
		if idx < len(call.Args) && related(deriv, rootObject(info, call.Args[idx]), origin) {
			return "call to " + shortFuncName(FuncKey(fn)) + " mutates the ranged relation", true
		}
	}
	return "", false
}

// reportEscapedUse flags uses of an escaped Batch after an invalidating
// call. The check is source-ordered within the function: an invalidating
// call positioned after the iteration, followed by a use of the value.
func reportEscapedUse(pass *Pass, u *FuncUnit, facts *FactSet, deriv map[types.Object]types.Object, esc *escapedBatch) {
	info := u.Pkg.Info
	loopEnd := esc.origin.rng.End()
	var callPositions []token.Pos
	var callNames []string
	var uses []token.Pos
	ast.Inspect(u.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if n.Pos() <= loopEnd {
				return true
			}
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if _, ok := invalidates(info, deriv, n, fn, facts.get(FuncKey(fn)), esc.origin.root); ok {
				callPositions = append(callPositions, n.Pos())
				callNames = append(callNames, shortFuncName(FuncKey(fn)))
			}
		case *ast.Ident:
			if info.Uses[n] == esc.obj && n.Pos() > esc.assignEnd {
				uses = append(uses, n.Pos())
			}
		}
		return true
	})
	sort.Slice(uses, func(i, j int) bool { return uses[i] < uses[j] })
	for _, use := range uses {
		for i, cp := range callPositions {
			if cp < use {
				pass.Reportf(use,
					"Batch value used after %s invalidated its backing relation (%s): the window now points into rebuilt column memory; copy the rows before mutating",
					callNames[i], objName(esc.origin.root))
				return // one report per escaped value
			}
		}
	}
}

// derivations maps each locally assigned variable to the root object of
// its initialiser, linking views derived from a relation (`rel := w.rel`)
// to their source for the relatedness check.
func derivations(u *FuncUnit) map[types.Object]types.Object {
	info := u.Pkg.Info
	deriv := make(map[types.Object]types.Object)
	record := func(lhs *ast.Ident, rhs ast.Expr) {
		lobj := info.Defs[lhs]
		if lobj == nil {
			lobj = info.Uses[lhs]
		}
		rroot := rootObject(info, rhs)
		if lobj != nil && rroot != nil && lobj != rroot {
			deriv[lobj] = rroot
		}
	}
	ast.Inspect(u.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if li, ok := lhs.(*ast.Ident); ok {
					record(li, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				record(name, n.Values[i])
			}
		}
		return true
	})
	return deriv
}

// related reports whether two variables are derivation-linked: equal, or
// one reachable from the other through the assignment chains.
func related(deriv map[types.Object]types.Object, a, b types.Object) bool {
	if a == nil || b == nil {
		return false
	}
	chain := func(o types.Object) map[types.Object]bool {
		seen := map[types.Object]bool{o: true}
		for {
			next, ok := deriv[o]
			if !ok || seen[next] {
				return seen
			}
			seen[next] = true
			o = next
		}
	}
	ca := chain(a)
	for o := range chain(b) {
		if ca[o] {
			return true
		}
	}
	return false
}

func objName(o types.Object) string {
	if o == nil {
		return "?"
	}
	return o.Name()
}
