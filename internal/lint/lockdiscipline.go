package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline flags writes to mutex-guarded struct fields while only
// the read lock is held — the exact data-race class PR 2 shipped and then
// hand-fixed in cmd/dwserve (stats mutation inside an RLock critical
// section).
//
// The guarding convention is the standard Go struct layout idiom: the
// fields guarded by a sync.RWMutex field are the named fields declared on
// the lines immediately following it; a blank line ends the guarded
// group. Doc comments between fields are transparent. A write is a plain
// assignment, an IncDec, an element assignment, or a call to a
// pointer-receiver method on a value-typed guarded field (the pattern
// that bit PR 2: stats.Add under RLock).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no write to an RWMutex-guarded struct field while only the read lock is held",
	Run:  runLockDiscipline,
}

// structGuards is the guard layout of one struct type.
type structGuards struct {
	// anchors is the set of sync.RWMutex field names.
	anchors map[string]bool
	// guardedBy maps a field name to the RWMutex field guarding it.
	guardedBy map[string]string
}

// lockKey identifies one mutex instance in scope: the variable holding
// the struct and the mutex field name within it.
type lockKey struct {
	base  types.Object
	mutex string
}

const (
	lockNone = iota
	lockRead
	lockWrite
)

type lockState map[lockKey]int

func cloneState(st lockState) lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

type lockAnalysis struct {
	pass   *Pass
	guards map[*types.TypeName]*structGuards
}

func runLockDiscipline(pass *Pass) {
	a := &lockAnalysis{pass: pass, guards: collectGuards(pass.Pkg)}
	if len(a.guards) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.stmts(fd.Body.List, make(lockState))
		}
	}
}

// collectGuards derives the guard layout of every struct declared in the
// package from its field ordering.
func collectGuards(pkg *Package) map[*types.TypeName]*structGuards {
	guards := make(map[*types.TypeName]*structGuards)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			sg := &structGuards{anchors: make(map[string]bool), guardedBy: make(map[string]string)}
			anchor := ""  // RWMutex field currently opening a guarded group
			prevEnd := -2 // line the previous field ended on
			for _, field := range st.Fields.List {
				start := pkg.Fset.Position(field.Pos()).Line
				if field.Doc != nil {
					start = pkg.Fset.Position(field.Doc.Pos()).Line
				}
				if start > prevEnd+1 {
					anchor = "" // blank line: guarded group ends
				}
				prevEnd = pkg.Fset.Position(field.End()).Line
				if len(field.Names) == 0 {
					continue // embedded field: no guard convention
				}
				if isRWMutex(pkg.Info, field.Type) {
					anchor = field.Names[0].Name
					sg.anchors[anchor] = true
					continue
				}
				if anchor == "" || isAtomic(pkg.Info, field.Type) {
					continue
				}
				for _, name := range field.Names {
					sg.guardedBy[name.Name] = anchor
				}
			}
			if len(sg.anchors) > 0 {
				guards[tn] = sg
			}
			return true
		})
	}
	return guards
}

func isRWMutex(info *types.Info, texpr ast.Expr) bool {
	return isNamedFrom(info, texpr, "sync", "RWMutex")
}

// isAtomic reports whether the field type lives in sync/atomic; such
// fields are safe to mutate under a read lock by design.
func isAtomic(info *types.Info, texpr ast.Expr) bool {
	tv, ok := info.Types[texpr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

func isNamedFrom(info *types.Info, texpr ast.Expr, pkgPath, name string) bool {
	tv, ok := info.Types[texpr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// guardsOf returns the guard layout for the struct type held by obj
// (through one level of pointer), or nil.
func (a *lockAnalysis) guardsOf(obj types.Object) *structGuards {
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return a.guards[named.Obj()]
}

// pathOf decomposes base.f1.f2... into the base variable and the chain of
// field objects; ok is false for anything that is not a plain
// variable-rooted field selection.
func (a *lockAnalysis) pathOf(e ast.Expr) (types.Object, []*types.Var, bool) {
	info := a.pass.Pkg.Info
	var fields []*types.Var
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			v, ok := info.Uses[x.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return nil, nil, false
			}
			fields = append([]*types.Var{v}, fields...)
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if _, ok := obj.(*types.Var); !ok {
				return nil, nil, false
			}
			return obj, fields, true
		default:
			return nil, nil, false
		}
	}
}

// lockOp recognises base.mutexField.{Lock,RLock,Unlock,RUnlock}() calls
// on a known RWMutex anchor and returns the affected key and new state.
func (a *lockAnalysis) lockOp(e ast.Expr) (lockKey, int, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	var mode int
	switch sel.Sel.Name {
	case "RLock":
		mode = lockRead
	case "Lock":
		mode = lockWrite
	case "RUnlock", "Unlock":
		mode = lockNone
	default:
		return lockKey{}, 0, false
	}
	base, fields, ok := a.pathOf(sel.X)
	if !ok || len(fields) != 1 {
		return lockKey{}, 0, false
	}
	sg := a.guardsOf(base)
	if sg == nil || !sg.anchors[fields[0].Name()] {
		return lockKey{}, 0, false
	}
	return lockKey{base: base, mutex: fields[0].Name()}, mode, true
}

func (a *lockAnalysis) stmts(list []ast.Stmt, st lockState) {
	for _, s := range list {
		a.stmt(s, st)
	}
}

func (a *lockAnalysis) stmt(s ast.Stmt, st lockState) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if key, mode, ok := a.lockOp(s.X); ok {
			if mode == lockNone {
				delete(st, key)
			} else {
				st[key] = mode
			}
			return
		}
		a.expr(s.X, st)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			a.write(lhs, st, s.Pos())
		}
		for _, rhs := range s.Rhs {
			a.expr(rhs, st)
		}
	case *ast.IncDecStmt:
		a.write(s.X, st, s.Pos())
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the lock stays held for the
		// remainder of the function, so state is unchanged here.
		if _, _, ok := a.lockOp(s.Call); ok {
			return
		}
		a.expr(s.Call, st)
	case *ast.GoStmt:
		a.expr(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.expr(r, st)
		}
	case *ast.SendStmt:
		a.expr(s.Chan, st)
		a.expr(s.Value, st)
	case *ast.LabeledStmt:
		a.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		a.stmts(s.List, st)
	case *ast.IfStmt:
		a.stmt(s.Init, st)
		a.expr(s.Cond, st)
		a.stmts(s.Body.List, cloneState(st))
		if s.Else != nil {
			a.stmt(s.Else, cloneState(st))
		}
	case *ast.ForStmt:
		a.stmt(s.Init, st)
		if s.Cond != nil {
			a.expr(s.Cond, st)
		}
		body := cloneState(st)
		a.stmts(s.Body.List, body)
		a.stmt(s.Post, body)
	case *ast.RangeStmt:
		a.expr(s.X, st)
		a.stmts(s.Body.List, cloneState(st))
	case *ast.SwitchStmt:
		a.stmt(s.Init, st)
		if s.Tag != nil {
			a.expr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					a.expr(e, st)
				}
				a.stmts(cc.Body, cloneState(st))
			}
		}
	case *ast.TypeSwitchStmt:
		a.stmt(s.Init, st)
		a.stmt(s.Assign, st)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				a.stmts(cc.Body, cloneState(st))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				branch := cloneState(st)
				a.stmt(cc.Comm, branch)
				a.stmts(cc.Body, branch)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						a.expr(v, st)
					}
				}
			}
		}
	}
}

// write checks one assignment target against the guard layout: a store
// into base.f... is flagged when f is guarded and only the read lock on
// its mutex is held. Element writes (m[k] = v, s[i] = v) count as writes
// to the container field.
func (a *lockAnalysis) write(lhs ast.Expr, st lockState, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		lhs = ix.X
	}
	base, fields, ok := a.pathOf(lhs)
	if !ok || len(fields) == 0 {
		return
	}
	sg := a.guardsOf(base)
	if sg == nil {
		return
	}
	mutex := sg.guardedBy[fields[0].Name()]
	if mutex == "" || st[lockKey{base: base, mutex: mutex}] != lockRead {
		return
	}
	// The store must land inside the guarded struct: every hop before the
	// final field has to be a value, not a pointer.
	for _, f := range fields[:len(fields)-1] {
		if !isValueStruct(f.Type()) {
			return
		}
	}
	a.pass.Reportf(pos,
		"write to %q (guarded by %q) while only %s.RLock is held; take %s.Lock or move the field behind its own mutex",
		fieldPath(base, fields), mutex, mutex, mutex)
}

// expr walks an expression for two hazards: calls to pointer-receiver
// methods on value-typed guarded fields (mutation under RLock, the PR-2
// pattern), and function literals, whose bodies run with their own lock
// state.
func (a *lockAnalysis) expr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.stmts(n.Body.List, make(lockState))
			return false
		case *ast.CallExpr:
			a.mutatingCall(n, st)
		}
		return true
	})
}

// mutatingCall flags base.f.Method(...) when Method has a pointer
// receiver, f is a guarded value-typed field, and only the read lock is
// held — the call takes &base.f and mutates guarded storage.
func (a *lockAnalysis) mutatingCall(call *ast.CallExpr, st lockState) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := a.pass.Pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		return // value receiver: operates on a copy
	}
	base, fields, ok := a.pathOf(sel.X)
	if !ok || len(fields) == 0 {
		return
	}
	sg := a.guardsOf(base)
	if sg == nil {
		return
	}
	mutex := sg.guardedBy[fields[0].Name()]
	if mutex == "" || st[lockKey{base: base, mutex: mutex}] != lockRead {
		return
	}
	// &base.f... only aliases guarded storage when every hop is a value.
	for _, f := range fields {
		if !isValueStruct(f.Type()) {
			return
		}
	}
	a.pass.Reportf(call.Pos(),
		"call to pointer-receiver method %s on %q (guarded by %q) while only %s.RLock is held — this mutates guarded state under a read lock",
		fn.Name(), fieldPath(base, fields), mutex, mutex)
}

// isValueStruct reports whether t is storage embedded in the enclosing
// struct (not reached through a pointer, interface, map, slice, or chan).
func isValueStruct(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Chan, *types.Signature:
		return false
	}
	return true
}

func fieldPath(base types.Object, fields []*types.Var) string {
	s := base.Name()
	for _, f := range fields {
		s += "." + f.Name()
	}
	return s
}
