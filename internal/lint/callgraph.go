package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-repo layer of the dataflow framework: a
// Program wrapping every loaded package, a call graph over all declared
// functions and methods, and the registry of go-statement launch sites.
// Interprocedural analyzers (lockorder, goleak, batchlife) reach it
// through Pass.Prog; the per-package analyzers ignore it.

// Program is the unit interprocedural analysis runs over: every package
// of one Run call, with lazily built whole-program structures shared by
// all analyzers in the run.
type Program struct {
	Pkgs []*Package

	built     bool
	units     map[string]*FuncUnit // canonical name → declared function
	goSites   []GoSite
	facts     *FactSet
	lockGraph *lockGraph
}

// FuncUnit is one declared function or method: its AST, defining
// package, and types object. Function literals are not units — each
// analyzer that needs them (spanend, goleak) resolves them in place, so
// a closure's effects are never mis-attributed to its enclosing
// function (a closure may run on another goroutine, after a lock was
// released, or never).
type FuncUnit struct {
	Key   string // canonical name, types.Func.FullName()
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	calls []CallSite

	lockSum *lockSummary // cached by Program.lockSummary
}

// CallSite is one static call found in a unit's body (outside nested
// function literals), resolved to a declared function.
type CallSite struct {
	Callee string // canonical name of the called function
	Call   *ast.CallExpr
}

// GoSite is one go statement with its enclosing unit.
type GoSite struct {
	Stmt *ast.GoStmt
	Unit *FuncUnit
}

// NewProgram wraps packages for analysis.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// FuncKey returns the canonical name used as a call-graph node for fn.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// Unit returns the declared function with the given canonical name, or
// nil when it is not part of the program (stdlib, export-data-only
// dependencies).
func (p *Program) Unit(key string) *FuncUnit {
	p.build()
	return p.units[key]
}

// Units returns every declared function of the program in a stable
// order.
func (p *Program) Units() []*FuncUnit {
	p.build()
	keys := make([]string, 0, len(p.units))
	for k := range p.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*FuncUnit, len(keys))
	for i, k := range keys {
		out[i] = p.units[k]
	}
	return out
}

// GoSites returns every go statement of the program.
func (p *Program) GoSites() []GoSite {
	p.build()
	return p.goSites
}

// Calls returns the static calls made directly by the unit's body.
func (u *FuncUnit) Calls() []CallSite { return u.calls }

// build populates the call graph once.
func (p *Program) build() {
	if p.built {
		return
	}
	p.built = true
	p.units = make(map[string]*FuncUnit)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				u := &FuncUnit{Key: FuncKey(fn), Fn: fn, Decl: fd, Pkg: pkg}
				p.units[u.Key] = u
			}
		}
	}
	for _, u := range p.units {
		p.collect(u)
	}
	sort.Slice(p.goSites, func(i, j int) bool {
		return p.goSites[i].Stmt.Pos() < p.goSites[j].Stmt.Pos()
	})
}

// collect gathers the calls and go statements of one unit's body,
// skipping nested function literals.
func (p *Program) collect(u *FuncUnit) {
	info := u.Pkg.Info
	// The call launched by a go statement runs asynchronously: it is a
	// goroutine entry point, not a synchronous call of the unit (its
	// effects — never returning, holding locks — do not happen in the
	// caller's frame). Its arguments still evaluate here, so only the
	// outermost call expression is excluded.
	launched := make(map[*ast.CallExpr]bool)
	ast.Inspect(u.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			p.goSites = append(p.goSites, GoSite{Stmt: n, Unit: u})
			launched[n.Call] = true
		case *ast.CallExpr:
			if launched[n] {
				return true
			}
			if fn := calleeFunc(info, n); fn != nil {
				u.calls = append(u.calls, CallSite{Callee: FuncKey(fn), Call: n})
			}
		}
		return true
	})
}

// rootObject decomposes a selector chain x.f.g... (through parens and
// pointer derefs) down to its base identifier's object. It returns nil
// for chains not rooted in a plain variable (call results, index
// expressions, composite literals).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// enclosingFuncLit finds the innermost function literal assigned to the
// local identifier id within body — the `launch := func() {...}` pattern
// goleak resolves when a goroutine is started through a variable. It
// returns nil unless exactly one assignment of a literal to that
// variable exists.
func enclosingFuncLit(info *types.Info, body *ast.BlockStmt, id *ast.Ident) *ast.FuncLit {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	var lit *ast.FuncLit
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			li, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def := info.Defs[li]
			if def == nil {
				def = info.Uses[li]
			}
			if def != obj {
				continue
			}
			count++
			if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
				lit = fl
			} else {
				lit = nil
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return lit
}

// posLess orders positions for deterministic reporting.
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
