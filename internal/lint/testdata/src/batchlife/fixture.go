// Package batchlife is the failing fixture for the batchlife analyzer:
// relation.Batch windows used across mutations of their backing
// relation — the PR-6 use-after-invalidate class — next to the
// legitimate pattern (mutating a fresh output relation while ranging
// the input).
package batchlife

import (
	"context"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/maintain"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
)

func mutateWhileRanging(r *relation.Relation, t relation.Tuple) {
	for b := range r.Batches() {
		_ = b.Len()
		r.Insert(t) // want "Batch window invalidated"
	}
}

func deleteWhileRanging(r *relation.Relation, t relation.Tuple) {
	for b := range r.Batches() {
		if b.Len() > 0 {
			r.Delete(t) // want "Batch window invalidated"
		}
	}
}

// An alias derived from the ranged relation is the same storage.
func mutateThroughAlias(r *relation.Relation, t relation.Tuple) {
	alias := r
	for b := range r.Batches() {
		_ = b
		alias.Insert(t) // want "Batch window invalidated"
	}
}

// A refresh-class call rewrites stored relations wholesale: every live
// batch window is invalidated, related or not.
func refreshWhileRanging(ctx context.Context, m *maintain.Maintainer, w *warehouse.Warehouse, u *catalog.Update, r *relation.Relation) {
	for b := range r.Batches() {
		_ = b
		_, _ = m.RefreshContext(ctx, w, u) // want "Batch window invalidated"
	}
}

// A batch that escapes its iteration and is read after a mutation
// points into rebuilt column memory.
func useAfterInvalidate(r *relation.Relation, t relation.Tuple) int {
	var saved relation.Batch
	for b := range r.Batches() {
		saved = b
		break
	}
	r.Insert(t)
	return saved.Len() // want "Batch value used after"
}

// Mutating a fresh output relation while ranging the input is the
// normal operator shape (SelectBatchStats) — not flagged.
func freshOutputOK(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Attrs()...)
	for b := range r.Batches() {
		for i := 0; i < b.Len(); i++ {
			out.InsertValues(rowValues(b, i)...)
		}
	}
	return out
}

// Reading after the iteration finished (no escape) is fine.
func mutateAfterRanging(r *relation.Relation, t relation.Tuple) int {
	n := 0
	for b := range r.Batches() {
		n += b.Len()
	}
	r.Insert(t)
	return n
}

func rowValues(b relation.Batch, i int) []relation.Value {
	vals := make([]relation.Value, b.NumCols())
	for c := range vals {
		vals[c] = b.Value(c, i)
	}
	return vals
}
