// Package spanend is the minimal fixture for the spanend analyzer: it
// sits under internal/ and starts trace spans with and without the
// required End.
package spanend

import (
	"context"

	"dwcomplement/internal/trace"
)

func cond() bool { return false }

// Deferred End: the canonical instrumentation shape.
func deferredEnd(t *trace.Tracer, ctx context.Context) {
	ctx, sp := t.Start(ctx, "op")
	defer sp.End()
	_ = ctx
}

// End via a deferred closure also counts.
func deferredClosure(t *trace.Tracer, ctx context.Context) {
	_, sp := t.StartRemote(ctx, "", "op")
	defer func() {
		sp.SetAttr("outcome", "done")
		sp.End()
	}()
}

// Linear End before every return.
func endBeforeReturns(ctx context.Context) error {
	_, sp := trace.StartSpan(ctx, "op")
	if cond() {
		sp.SetAttr("outcome", "early")
		sp.End()
		return nil
	}
	sp.End()
	return nil
}

// A span that falls off the end of the function without End.
func neverEnded(t *trace.Tracer, ctx context.Context) {
	_, sp := t.Start(ctx, "op") // want "not ended on every path"
	sp.SetAttr("k", "v")
}

// Ended on one branch but not before the early return.
func missingOnPath(t *trace.Tracer, ctx context.Context) error {
	_, sp := t.Start(ctx, "op") // want "not ended on every path"
	if cond() {
		return nil
	}
	sp.End()
	return nil
}

// Discarding the span makes it impossible to End.
func discarded(t *trace.Tracer, ctx context.Context) {
	_, _ = t.Start(ctx, "op") // want "discarded with _"
}

// A span started inside a function literal is checked against that
// literal's own returns, not the enclosing function's.
func insideLiteral(t *trace.Tracer, ctx context.Context) {
	run := func() {
		_, sp := t.Start(ctx, "inner") // want "not ended on every path"
		_ = sp
	}
	run()
}
