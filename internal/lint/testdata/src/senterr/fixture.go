// Package senterr is the minimal failing fixture for the senterr
// analyzer: sentinel conditions reported as ad-hoc fmt.Errorf, invisible
// to errors.Is across the public API.
package senterr

import (
	"fmt"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

func adHocUnknown(name string) error {
	return fmt.Errorf("pkg: unknown relation %q", name) // want "does not wrap ErrUnknownRelation"
}

func adHocMismatch(got, want int) error {
	return fmt.Errorf("pkg: arity mismatch: got %d, want %d", got, want) // want "does not wrap ErrSchemaMismatch"
}

// wrappedWithoutVerb mentions the sentinel but forgets %w, so errors.Is
// still fails.
func wrappedWithoutVerb(name string) error {
	return fmt.Errorf("pkg: unknown relation %q (%v)", name, algebra.ErrUnknownRelation) // want "does not wrap ErrUnknownRelation"
}

func wrappedUnknown(name string) error {
	return fmt.Errorf("pkg: unknown relation %q: %w", name, algebra.ErrUnknownRelation)
}

func wrappedMismatch(got, want int) error {
	return fmt.Errorf("pkg: arity mismatch: got %d, want %d: %w", got, want, relation.ErrSchemaMismatch)
}

// unrelated errors are out of scope.
func unrelated(name string) error {
	return fmt.Errorf("pkg: cannot open %q", name)
}
