// Package goleak is the failing fixture for the goleak analyzer:
// goroutines with no shutdown path — inescapable for {} loops and
// unstoppable listeners — next to the shapes a well-behaved launcher
// uses (context loops, done channels, servers the owner can Shutdown).
package goleak

import (
	"context"
	"net/http"
	"time"
)

func spinForever() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func leaky(work chan int) {
	go func() { // want "goroutine never exits"
		for {
			time.Sleep(time.Millisecond)
		}
	}()

	go spinForever() // want "goroutine never exits"

	go func() {
		_ = http.ListenAndServe("localhost:0", nil) // want "never returns"
	}()

	launch := func() {
		for {
			<-work // receiving is not exiting
		}
	}
	go launch() // want "goroutine never exits"
}

func clean(ctx context.Context, done chan struct{}, work chan int) {
	// Loop exits when the context is cancelled.
	go func() {
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()

	// Conditional loop: not a for {}.
	go func() {
		for ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
	}()

	// Loop breaks when the done channel closes.
	go func() {
		for {
			select {
			case <-done:
				return
			case n := <-work:
				_ = n
			}
		}
	}()

	// Range over a channel ends when the sender closes it.
	go func() {
		for n := range work {
			_ = n
		}
	}()

	// A server value the caller owns: Shutdown exists, so the listener
	// goroutine has a shutdown path.
	srv := &http.Server{Addr: "localhost:0"}
	go func() {
		_ = srv.ListenAndServe()
	}()
	_ = srv.Shutdown(context.Background())

	// One-shot goroutine: runs to completion on its own.
	go func() {
		work <- 1
	}()
}
