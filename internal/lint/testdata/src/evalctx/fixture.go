// Package evalctx is the minimal failing fixture for the evalctx
// analyzer: it sits under internal/ and calls the context-free
// evaluation wrappers reserved for the public facade.
package evalctx

import (
	"context"
	"net/http"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

func contextFree(e algebra.Expr, st algebra.State, v *view.PSJ, vs *view.Set) {
	_, _ = algebra.Eval(e, st)  // want "context-free algebra.Eval"
	_ = algebra.MustEval(e, st) // want "context-free algebra.MustEval"
	_, _ = v.Eval(st)           // want "context-free view.PSJ.Eval"
	_, _ = vs.Eval(st)          // want "context-free view.Set.Eval"
}

func deprecatedAccessors(r *relation.Relation) {
	r.Each(func(t relation.Tuple) {}) // want "deprecated relation.Relation.Each"
	_ = r.Tuples()                    // want "deprecated relation.Relation.Tuples"
}

func iteratorAccessors(r *relation.Relation) {
	for t := range r.All() {
		_ = t
	}
	for b := range r.Batches() {
		_ = b
	}
	_ = r.SortedTuples()
}

func contextFreeHTTP(c *http.Client) {
	_, _ = http.Get("http://src")                    // want "context-free http.Get"
	_, _ = http.Post("http://src", "", nil)          // want "context-free http.Post"
	_, _ = http.Head("http://src")                   // want "context-free http.Head"
	_, _ = http.NewRequest("GET", "http://src", nil) // want "context-free http.NewRequest"
	_, _ = c.Get("http://src")                       // want "context-free http.Client.Get"
	_, _ = c.Head("http://src")                      // want "context-free http.Client.Head"
}

func contextAwareHTTP(ctx context.Context, c *http.Client) {
	req, err := http.NewRequestWithContext(ctx, "GET", "http://src", nil)
	if err == nil {
		_, _ = c.Do(req)
	}
}

func contextAware(e algebra.Expr, st algebra.State, v *view.PSJ, vs *view.Set) {
	ec := algebra.NewEvalContext(nil)
	_, _ = algebra.EvalCtx(ec, e, st)
	_, _ = v.EvalCtx(ec, st)
	_, _ = vs.EvalCtx(ec, st)
}

func suppressed(e algebra.Expr, st algebra.State) {
	//dwlint:ignore evalctx corpus sampling needs no cancellation
	_, _ = algebra.Eval(e, st)
}
