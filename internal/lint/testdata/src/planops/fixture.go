// Package planops is the minimal failing fixture for the planops
// analyzer: a near-exhaustive type switch over algebra.Expr that forgot
// an operator kind.
package planops

import "dwcomplement/internal/algebra"

// nearlyExhaustive handles 7 of the 8 operator kinds; Rename silently
// falls through to the default and would skip stats accounting.
func nearlyExhaustive(e algebra.Expr) string {
	switch e.(type) { // want "missing: Rename"
	case *algebra.Base:
		return "base"
	case *algebra.Empty:
		return "empty"
	case *algebra.Select:
		return "select"
	case *algebra.Project:
		return "project"
	case *algebra.Join:
		return "join"
	case *algebra.Union:
		return "union"
	case *algebra.Diff:
		return "diff"
	default:
		return "?"
	}
}

// smallSubset intentionally matches a few kinds and falls through; below
// the threshold it is not an operator dispatch.
func smallSubset(e algebra.Expr) bool {
	switch e.(type) {
	case *algebra.Join, *algebra.Union, *algebra.Diff:
		return true
	default:
		return false
	}
}

// exhaustive handles every operator kind.
func exhaustive(e algebra.Expr) string {
	switch e.(type) {
	case *algebra.Base:
		return "base"
	case *algebra.Empty:
		return "empty"
	case *algebra.Select:
		return "select"
	case *algebra.Project:
		return "project"
	case *algebra.Join:
		return "join"
	case *algebra.Union:
		return "union"
	case *algebra.Diff:
		return "diff"
	case *algebra.Rename:
		return "rename"
	default:
		return "?"
	}
}

// otherInterface dispatches on a different interface; not our business.
func otherInterface(c algebra.Cond) bool {
	switch c.(type) {
	case algebra.True:
		return true
	default:
		return false
	}
}
