// Package lockorder is the failing fixture for the lockorder analyzer.
//
// Src/Server reproduce the PR-5 handleResend inversion with direct
// calls: the notification path holds Src.mu and enters a Server method
// that takes Server.mu, while the resend path holds Server.mu and calls
// back into a Src method that takes Src.mu — a cycle in the global
// acquisition-order graph. (In the real code the first hop runs through
// a registered callback; the fixture inlines it so static call
// resolution sees both edges.)
package lockorder

import "sync"

// Src mirrors source.Source: mu guards seq, and applying an update
// notifies the server while mu is held.
type Src struct {
	mu  sync.Mutex
	seq uint64
	srv *Server
}

func (s *Src) Apply() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.srv.Notify(s.seq) // want "lock-order cycle"
}

func (s *Src) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Server mirrors remote.SourceServer before the PR-5 fix: the resend
// path reads the source's sequence number while still holding its own
// mutex — the reverse acquisition order.
type Server struct {
	mu   sync.Mutex
	last uint64
	src  *Src
}

func (sv *Server) Notify(seq uint64) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.last = seq
}

func (sv *Server) HandleResend() uint64 {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.last == 0 {
		return sv.src.Seq() // want "lock-order cycle"
	}
	return sv.last
}

// Direct (single-function) inversion on package-level mutexes.
var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
)

func directAB() {
	muA.Lock()
	muB.Lock() // want "lock-order cycle"
	muB.Unlock()
	muA.Unlock()
}

func directBA() {
	muB.Lock()
	muA.Lock() // want "lock-order cycle"
	muA.Unlock()
	muB.Unlock()
}

// Consistent order everywhere: no cycle, no report.
func consistentCD1() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func consistentCD2(n int) {
	muC.Lock()
	defer muC.Unlock()
	if n > 0 {
		muD.Lock()
		muD.Unlock()
	}
}

// Releasing before the next acquisition breaks the edge: D then C in
// sequence, but never nested.
func sequentialDC() {
	muD.Lock()
	muD.Unlock()
	muC.Lock()
	muC.Unlock()
}

// Two instances of one class (a linked structure locked hand-over-hand)
// produce only a class-level self-edge, which is not an ordering
// violation the class abstraction can judge — not reported.
type node struct {
	mu   sync.Mutex
	next *node
}

func (n *node) push() {
	n.mu.Lock()
	n.next.mu.Lock()
	n.next.mu.Unlock()
	n.mu.Unlock()
}

// A goroutine body starts with an empty held set: launching work while
// holding a lock is not a nested acquisition.
func launchUnderLock() {
	muC.Lock()
	go func() {
		muD.Lock()
		muD.Unlock()
	}()
	muC.Unlock()
}
