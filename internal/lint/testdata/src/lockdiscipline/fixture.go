// Package lockdiscipline is the minimal failing fixture for the
// lockdiscipline analyzer. racyServer reproduces the PR-2 dwserve bug
// class verbatim: stats mutation while only mu.RLock is held.
package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	n int
}

func (s *stats) Add(d int) { s.n += d }

func (s stats) Snapshot() int { return s.n }

type racyServer struct {
	mu         sync.RWMutex
	data       map[string]int
	hits       int
	queryStats stats

	unguarded int
}

// handleQuery is the PR-2 race: read path takes RLock, then mutates
// guarded state.
func (s *racyServer) handleQuery(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.data[k]
	s.queryStats.Add(1) // want "mutates guarded state under a read lock"
	s.hits++            // want "while only mu.RLock is held"
	s.data[k] = v + 1   // want "while only mu.RLock is held"
	return v
}

// handleUpdate is the correct write path: full Lock.
func (s *racyServer) handleUpdate(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
	s.hits++
	s.queryStats.Add(1)
}

// unguardedOK: fields outside the guarded group are not flagged.
func (s *racyServer) unguardedOK() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.unguarded++
}

// noLockOK: writes with no lock held (constructors, single-threaded
// setup) are out of scope for this analyzer.
func (s *racyServer) noLockOK() {
	s.hits = 0
	s.queryStats.Add(1)
}

// upgradeOK: the read section ends before the write section begins.
func (s *racyServer) upgradeOK(k string, v int) {
	s.mu.RLock()
	_ = s.data[k]
	s.mu.RUnlock()
	s.mu.Lock()
	s.data[k] = v
	s.mu.Unlock()
}

// readOnlyCallOK: value-receiver methods cannot mutate the field.
func (s *racyServer) readOnlyCallOK() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queryStats.Snapshot()
}

// branchScope: a lock taken inside a branch does not leak to the outer
// scope, but writes inside the branch are still checked.
func (s *racyServer) branchScope(cond bool) {
	if cond {
		s.mu.RLock()
		s.hits++ // want "while only mu.RLock is held"
		s.mu.RUnlock()
	}
	s.hits++
}

// closureFreshState: a function literal runs with its own lock state.
func (s *racyServer) closureFreshState() func() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return func() {
		s.hits++ // deferred execution: no lock held when it runs
	}
}

// suppressed shows the escape hatch.
func (s *racyServer) suppressed() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	//dwlint:ignore lockdiscipline exercised by the framework test
	s.hits++
}

// fixedServer is the PR-2 fix: stats behind their own mutex, counters
// atomic. Nothing here is flagged.
type fixedServer struct {
	mu   sync.RWMutex
	data map[string]int

	queries atomic.Int64

	statsMu    sync.Mutex
	queryStats stats
}

func (s *fixedServer) handleQuery(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := s.data[k]
	s.queries.Add(1)
	s.statsMu.Lock()
	s.queryStats.Add(1)
	s.statsMu.Unlock()
	return v
}
