package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies the suggested fixes carried by diags. Edits are
// grouped per file, sorted, checked for overlap (a conflicting edit is
// skipped rather than corrupting the file), and each file is rewritten
// in one atomic rename — a crash mid-run leaves every file either
// untouched or fully fixed. With dryRun the new contents are computed
// but nothing is written.
//
// The returned map holds the new content of every file that would
// change; fixed counts the diagnostics whose fix was applied in full.
func ApplyFixes(diags []Diagnostic, dryRun bool) (changed map[string][]byte, fixed int, err error) {
	type fileEdit struct {
		TextEdit
		diag int // index into diags, to count fully applied fixes
	}
	byFile := make(map[string][]fileEdit)
	for i, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.Pos.Filename] = append(byFile[e.Pos.Filename], fileEdit{TextEdit: e, diag: i})
		}
	}

	changed = make(map[string][]byte)
	applied := make(map[int]bool) // diag index → all its edits applied
	dropped := make(map[int]bool)
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, file := range files {
		edits := byFile[file]
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return nil, 0, fmt.Errorf("lint: reading %s: %w", file, rerr)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Pos.Offset != edits[j].Pos.Offset {
				return edits[i].Pos.Offset < edits[j].Pos.Offset
			}
			return edits[i].End.Offset < edits[j].End.Offset
		})
		// Drop out-of-range and overlapping edits (first wins).
		kept := edits[:0]
		lastEnd := -1
		for _, e := range edits {
			if e.Pos.Offset < 0 || e.End.Offset < e.Pos.Offset || e.End.Offset > len(src) ||
				e.Pos.Offset < lastEnd {
				dropped[e.diag] = true
				continue
			}
			kept = append(kept, e)
			if e.End.Offset > lastEnd {
				lastEnd = e.End.Offset
			}
			// A pure insertion (Pos == End) at the same offset as a
			// following edit is allowed; only true overlaps conflict.
			if e.End.Offset == e.Pos.Offset {
				lastEnd = e.End.Offset
			}
		}
		if len(kept) == 0 {
			continue
		}
		// Apply back-to-front so earlier offsets stay valid.
		out := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			out = append(out[:e.Pos.Offset], append([]byte(e.NewText), out[e.End.Offset:]...)...)
			applied[e.diag] = true
		}
		changed[file] = out
		if !dryRun {
			if werr := writeAtomic(file, out); werr != nil {
				return nil, 0, werr
			}
		}
	}

	for i := range applied {
		if !dropped[i] {
			fixed++
		}
	}
	return changed, fixed, nil
}

// writeAtomic replaces path's content via a temp file + rename in the
// same directory.
func writeAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".dwlint-fix-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if info, err := os.Stat(path); err == nil {
		_ = os.Chmod(tmpName, info.Mode())
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
