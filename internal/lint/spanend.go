package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SpanEnd enforces the tracing layer's lifecycle contract in library
// code: every span started by internal/trace (Tracer.Start,
// Tracer.StartRemote, or the package-level StartSpan) must be finished,
// or it silently never reaches the ring buffer — the trace shows a hole
// exactly where the instrumented operation ran. A span is considered
// ended when the starting function either defers its End or calls End
// before every later return (checked positionally, in source order —
// the same linear reading a reviewer does). Discarding the span with _
// is always a violation: an unnamed span cannot be ended.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "internal/ code must End every span started via internal/trace (defer, or before every return)",
	Run:  runSpanEnd,
}

const tracePkgPath = "dwcomplement/internal/trace"

// spanStart is one trace start site found in a function body.
type spanStart struct {
	name string // span variable ("" when discarded with _)
	fn   string // starting function, for the diagnostic
	pos  token.Pos
}

func runSpanEnd(pass *Pass) {
	// Only library code is constrained (matching evalctx); the trace
	// package itself starts and ends spans through its own internals.
	if !strings.Contains(pass.Pkg.PkgPath, "/internal/") || pass.Pkg.PkgPath == tracePkgPath {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkSpanBody(pass, body)
			}
			return true
		})
	}
}

// checkSpanBody verifies every span started directly in body (nested
// function literals are checked separately by the Inspect above).
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	var starts []spanStart
	deferred := map[string]bool{}    // span name → defer'd End exists
	ends := map[string][]token.Pos{} // span name → non-deferred End positions
	var returns []token.Pos

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.FuncLit:
				// A literal's own starts and returns belong to IT; its
				// End calls still count for the enclosing function (a
				// span handed to a closure — e.g. a deferred cleanup).
				collectEnds(pass, stmt.Body, inDefer, deferred, ends)
				return false
			case *ast.DeferStmt:
				walk(stmt.Call, true)
				return false
			case *ast.ReturnStmt:
				if !inDefer {
					returns = append(returns, stmt.Pos())
				}
			case *ast.AssignStmt:
				if st, ok := spanStartOf(pass, stmt); ok {
					starts = append(starts, st)
				}
			case *ast.CallExpr:
				if name, ok := spanEndOf(pass, stmt); ok {
					if inDefer {
						deferred[name] = true
					} else {
						ends[name] = append(ends[name], stmt.Pos())
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	for _, st := range starts {
		if st.name == "" {
			pass.Reportf(st.pos,
				"span from trace.%s discarded with _; assign it and call End", st.fn)
			continue
		}
		if deferred[st.name] {
			continue
		}
		// Every later return — and the fall-off-the-end point — must
		// have an End for this span somewhere before it in source order.
		checkpoints := append([]token.Pos{}, returns...)
		checkpoints = append(checkpoints, body.End())
		ok := true
		for _, r := range checkpoints {
			if r < st.pos {
				continue
			}
			covered := false
			for _, e := range ends[st.name] {
				if e > st.pos && e < r {
					covered = true
					break
				}
			}
			if !covered {
				ok = false
				break
			}
		}
		if !ok {
			pass.Reportf(st.pos,
				"span %q from trace.%s is not ended on every path; defer %s.End() or call it before each return",
				st.name, st.fn, st.name)
		}
	}
}

// collectEnds records End calls found inside a nested function literal:
// deferred literals end the span like a direct defer; a plain closure's
// End counts at the literal's position.
func collectEnds(pass *Pass, body *ast.BlockStmt, inDefer bool, deferred map[string]bool, ends map[string][]token.Pos) {
	ast.Inspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := spanEndOf(pass, call); ok {
			if inDefer {
				deferred[name] = true
			} else {
				ends[name] = append(ends[name], body.Pos())
			}
		}
		return true
	})
}

// spanStartOf reports whether stmt assigns the result of a trace start
// call, returning the span variable's name ("" when discarded).
func spanStartOf(pass *Pass, stmt *ast.AssignStmt) (spanStart, bool) {
	if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 2 {
		return spanStart{}, false
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return spanStart{}, false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkgPath {
		return spanStart{}, false
	}
	switch fn.Name() {
	case "StartSpan", "Start", "StartRemote":
	default:
		return spanStart{}, false
	}
	st := spanStart{fn: fn.Name(), pos: call.Pos()}
	if id, ok := stmt.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
		st.name = id.Name
	}
	return st, true
}

// spanEndOf reports whether call is <ident>.End() on a span variable,
// returning the variable name.
func spanEndOf(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkgPath || receiverName(fn) != "Span" {
		return "", false
	}
	return id.Name, true
}
