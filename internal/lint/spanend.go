package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// SpanEnd enforces the tracing layer's lifecycle contract in library
// code: every span started by internal/trace (Tracer.Start,
// Tracer.StartRemote, or the package-level StartSpan) must be finished,
// or it silently never reaches the ring buffer — the trace shows a hole
// exactly where the instrumented operation ran. A span is considered
// ended when the starting function defers its End (directly or inside a
// deferred closure) or when every CFG path from the start to the
// function's exit passes an End call. Discarding the span with _ is
// always a violation: an unnamed span cannot be ended.
//
// The not-ended diagnostic carries a suggested fix — insert
// `defer <span>.End()` right after the start — applied by `dwlint -fix`.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "internal/ code must End every span started via internal/trace (defer, or before every return)",
	Run:  runSpanEnd,
}

const tracePkgPath = "dwcomplement/internal/trace"

// spanStart is one trace start site found in a function body.
type spanStart struct {
	name string // span variable ("" when discarded with _)
	fn   string // starting function, for the diagnostic
	pos  token.Pos
}

func runSpanEnd(pass *Pass) {
	// Only library code is constrained (matching evalctx); the trace
	// package itself starts and ends spans through its own internals.
	if !strings.Contains(pass.Pkg.PkgPath, "/internal/") || pass.Pkg.PkgPath == tracePkgPath {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkSpanBody(pass, body)
			}
			return true
		})
	}
}

// checkSpanBody verifies every span started directly in body over the
// body's CFG (nested function literals are checked separately by the
// Inspect above; their own starts and exits belong to them).
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	cfg := BuildCFG(body)

	// Deferred ends finish the span on every path, including panics: a
	// direct `defer s.End()` or an End inside a deferred closure.
	deferred := map[string]bool{}
	for _, d := range cfg.Defers {
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if name, ok := spanEndOf(pass, call); ok {
						deferred[name] = true
					}
				}
				return true
			})
			continue
		}
		if name, ok := spanEndOf(pass, d.Call); ok {
			deferred[name] = true
		}
	}

	// Start sites, located by (block, statement index) for the path
	// check. Nested literals are skipped — their starts are theirs.
	type startSite struct {
		st    spanStart
		block *Block
		idx   int
	}
	var starts []startSite
	for _, b := range cfg.Blocks {
		for i, n := range b.Stmts {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if as, ok := m.(*ast.AssignStmt); ok {
					if st, ok := spanStartOf(pass, as); ok {
						starts = append(starts, startSite{st: st, block: b, idx: i})
					}
				}
				return true
			})
		}
	}

	for _, s := range starts {
		if s.st.name == "" {
			pass.Reportf(s.st.pos,
				"span from trace.%s discarded with _; assign it and call End", s.st.fn)
			continue
		}
		if deferred[s.st.name] {
			continue
		}
		endsSpan := func(n ast.Node) bool {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				// An End handed to a closure (non-deferred) counts where
				// the closure appears, like any other statement content.
				if call, ok := m.(*ast.CallExpr); ok {
					if name, ok := spanEndOf(pass, call); ok && name == s.st.name {
						found = true
					}
				}
				return !found
			})
			return found
		}
		if cfg.EveryPathReaches(s.block, s.idx+1, endsSpan) {
			continue
		}
		var fix *SuggestedFix
		// Suggest `defer s.End()` after the start when the start is a
		// whole statement of its block (not an if/for init clause).
		if stmt, ok := s.block.Stmts[s.idx].(*ast.AssignStmt); ok {
			col := pass.Pkg.Fset.Position(stmt.Pos()).Column
			indent := strings.Repeat("\t", max(col-1, 0))
			fix = &SuggestedFix{
				Message: fmt.Sprintf("insert defer %s.End()", s.st.name),
				Edits: []TextEdit{
					pass.Edit(stmt.End(), stmt.End(), "\n"+indent+"defer "+s.st.name+".End()"),
				},
			}
		}
		if fix != nil {
			pass.ReportFix(s.st.pos, fix,
				"span %q from trace.%s is not ended on every path; defer %s.End() or call it before each return",
				s.st.name, s.st.fn, s.st.name)
		} else {
			pass.Reportf(s.st.pos,
				"span %q from trace.%s is not ended on every path; defer %s.End() or call it before each return",
				s.st.name, s.st.fn, s.st.name)
		}
	}
}

// spanStartOf reports whether stmt assigns the result of a trace start
// call, returning the span variable's name ("" when discarded).
func spanStartOf(pass *Pass, stmt *ast.AssignStmt) (spanStart, bool) {
	if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 2 {
		return spanStart{}, false
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return spanStart{}, false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkgPath {
		return spanStart{}, false
	}
	switch fn.Name() {
	case "StartSpan", "Start", "StartRemote":
	default:
		return spanStart{}, false
	}
	st := spanStart{fn: fn.Name(), pos: call.Pos()}
	if id, ok := stmt.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
		st.name = id.Name
	}
	return st, true
}

// spanEndOf reports whether call is <ident>.End() on a span variable,
// returning the variable name.
func spanEndOf(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkgPath || receiverName(fn) != "Span" {
		return "", false
	}
	return id.Name, true
}
