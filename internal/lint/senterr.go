package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// SentErr enforces sentinel-error wrapping: an error message that
// describes one of the repo's sentinel conditions must be built with
// %w wrapping the sentinel, so errors.Is(err, dwc.ErrUnknownRelation)
// and errors.Is(err, dwc.ErrSchemaMismatch) work across the public API
// no matter which layer produced the error.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "errors describing sentinel conditions must wrap ErrUnknownRelation / ErrSchemaMismatch with %w",
	Run:  runSentErr,
}

// sentinelPhrases maps message substrings to the sentinel each implies.
var sentinelPhrases = []struct {
	phrase, sentinel string
}{
	{"unknown relation", "ErrUnknownRelation"},
	{"schema mismatch", "ErrSchemaMismatch"},
	{"arity mismatch", "ErrSchemaMismatch"},
}

func runSentErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil ||
				fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			lower := strings.ToLower(format)
			for _, sp := range sentinelPhrases {
				if !strings.Contains(lower, sp.phrase) {
					continue
				}
				if strings.Contains(format, "%w") && argMentions(call.Args[1:], sp.sentinel) {
					continue
				}
				pass.Reportf(call.Pos(),
					"error mentions %q but does not wrap %s; use fmt.Errorf(\"...: %%w\", ..., %s)",
					sp.phrase, sp.sentinel, sp.sentinel)
			}
			return true
		})
	}
}

// argMentions reports whether any argument expression references an
// identifier with the given name (the sentinel var, possibly through a
// package qualifier or facade re-export).
func argMentions(args []ast.Expr, name string) bool {
	for _, a := range args {
		found := false
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
