package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the repository-wide mutex acquisition-order graph
// and flags every edge that participates in a cycle — a potential
// deadlock. Nodes are lock classes ("pkg.Type.field" for struct mutex
// fields, "pkg.var" for package-level mutexes); an edge A→B is recorded
// when B is acquired while A is held, either directly in one function
// or through a call whose callee (per the cross-package MayAcquire
// fact) may take B. This is exactly the analysis that would have caught
// the PR-5 `s.mu`/`src.mu` inversion in handleResend: the notification
// path took source.Source.mu then remote.SourceServer.mu, while the
// resend path held SourceServer.mu and called Source.Seq.
//
// Classes abstract over instances, so an edge A→A (two different
// relations locked in sequence, a tree of same-typed nodes) is not
// reported: self-edges are dropped before cycle detection.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no cycles in the global mutex acquisition-order graph (potential deadlock)",
	Run:  runLockOrder,
}

// lockSummary is the per-function lock behaviour feeding both the
// Acquires fact and the global graph.
type lockSummary struct {
	// acquires lists the classes this function locks directly.
	acquires []string
	// edges are direct acquired-while-held pairs with the acquisition
	// position.
	edges []lockEdge
	// heldCalls are resolved call sites annotated with the lock classes
	// held at the call.
	heldCalls []heldCall
}

type lockEdge struct {
	from, to string
	pos      token.Pos
	// via names the callee that (transitively) acquires `to` when the
	// edge crosses a call; empty for a direct acquisition.
	via string
}

type heldCall struct {
	held   []string
	callee string
	pos    token.Pos
}

// lockGraph is the global acquisition-order graph.
type lockGraph struct {
	// edges[from][to] lists every site inducing the edge.
	edges map[string]map[string][]lockEdge
}

// lockSummaries is the per-program cache.
func (p *Program) lockSummary(u *FuncUnit) *lockSummary {
	if u.lockSum == nil {
		u.lockSum = summarizeLocks(u)
	}
	return u.lockSum
}

// LockGraph builds (once) the global acquisition-order graph: direct
// edges plus call-induced edges through the MayAcquire facts.
func (p *Program) LockGraph() *lockGraph {
	if p.lockGraph != nil {
		return p.lockGraph
	}
	facts := p.Facts() // also fills every unit's lock summary
	g := &lockGraph{edges: make(map[string]map[string][]lockEdge)}
	add := func(e lockEdge) {
		if e.from == e.to {
			return // class-level self-edge: different instances, no order
		}
		m := g.edges[e.from]
		if m == nil {
			m = make(map[string][]lockEdge)
			g.edges[e.from] = m
		}
		m[e.to] = append(m[e.to], e)
	}
	for _, u := range p.Units() {
		sum := p.lockSummary(u)
		for _, e := range sum.edges {
			add(e)
		}
		for _, hc := range sum.heldCalls {
			callee := facts.get(hc.callee)
			for _, from := range hc.held {
				for _, to := range callee.MayAcquire {
					add(lockEdge{from: from, to: to, pos: hc.pos, via: hc.callee})
				}
			}
		}
	}
	p.lockGraph = g
	return g
}

// cycleEdges returns every edge that lies on a cycle (both endpoints in
// one strongly connected component of ≥2 nodes), plus a representative
// cycle path per edge for the diagnostic.
func (g *lockGraph) cycleEdges() []diagEdge {
	// Tarjan SCC over the class nodes.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, ncomp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range g.edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	// Sink nodes appear only as targets; give them entries so SCC
	// assignment covers them.
	var sinks []string
	for v := range g.edges {
		for w := range g.edges[v] {
			if _, ok := g.edges[w]; !ok {
				sinks = append(sinks, w)
			}
		}
	}
	for _, w := range sinks {
		if _, ok := g.edges[w]; !ok {
			g.edges[w] = map[string][]lockEdge{}
		}
	}
	for v := range g.edges {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	var out []diagEdge
	for from, tos := range g.edges {
		for to, sites := range tos {
			if comp[from] != comp[to] || compSize[comp[from]] < 2 {
				continue
			}
			path := g.pathWithin(to, from, comp[from], comp)
			for _, e := range sites {
				out = append(out, diagEdge{edge: e, backPath: path})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].edge.pos < out[j].edge.pos })
	return out
}

// diagEdge is one reportable cycle edge plus the path closing the cycle
// (to → ... → from), used to render the full loop in the message.
type diagEdge struct {
	edge     lockEdge
	backPath []string
}

// pathWithin finds a shortest path from src to dst staying inside one
// SCC (BFS); both endpoints included.
func (g *lockGraph) pathWithin(src, dst string, c int, comp map[string]int) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Deterministic expansion order.
		tos := make([]string, 0, len(g.edges[v]))
		for w := range g.edges[v] {
			tos = append(tos, w)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if comp[w] != c {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = v
			if w == dst {
				var path []string
				for x := dst; ; x = prev[x] {
					path = append([]string{x}, path...)
					if x == src {
						return path
					}
				}
			}
			queue = append(queue, w)
		}
	}
	return []string{src, dst} // unreachable in a well-formed SCC
}

func runLockOrder(pass *Pass) {
	g := pass.Prog.LockGraph()
	fset := pass.Pkg.Fset
	// Report only edges positioned in this package, so the Run loop
	// (one pass per package) emits each site exactly once.
	inPkg := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		inPkg[fset.Position(f.Pos()).Filename] = true
	}
	seen := make(map[token.Pos]bool)
	for _, de := range g.cycleEdges() {
		e := de.edge
		if !inPkg[fset.Position(e.pos).Filename] || seen[e.pos] {
			continue
		}
		seen[e.pos] = true
		cycle := strings.Join(append([]string{e.from, e.to}, de.backPath[1:]...), " → ")
		if e.via != "" {
			pass.Reportf(e.pos,
				"lock-order cycle: call to %s may acquire %s while %s is held (cycle: %s); acquire the locks in one global order or move the call outside the critical section",
				shortFuncName(e.via), e.to, e.from, cycle)
		} else {
			pass.Reportf(e.pos,
				"lock-order cycle: %s acquired while %s is held (cycle: %s); acquire the locks in one global order",
				e.to, e.from, cycle)
		}
	}
}

// shortFuncName trims a canonical function name to pkg.(Type).Method.
func shortFuncName(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}

// summarizeLocks runs the must-held dataflow over one function's CFG.
func summarizeLocks(u *FuncUnit) *lockSummary {
	sum := &lockSummary{}
	cfg := BuildCFG(u.Decl.Body)

	// preds for the merge step.
	preds := make(map[*Block][]*Block)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	// in-state per block: nil = not yet reached (⊤ for intersection).
	in := make(map[*Block][]string)
	entry := cfg.Blocks[0]
	in[entry] = []string{}

	transfer := func(b *Block, held []string, record bool) []string {
		held = append([]string(nil), held...)
		for _, n := range b.Stmts {
			held = u.lockStep(n, held, record, sum)
		}
		return held
	}

	// Iterate to fixpoint (intersection merge: a lock counts as held
	// only when held on every path).
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			var merged []string
			known := false
			if b == entry {
				merged, known = []string{}, true
			} else {
				for _, p := range preds[b] {
					if st, ok := in[p]; ok {
						out := transfer(p, st, false)
						if !known {
							merged, known = out, true
						} else {
							merged = intersect(merged, out)
						}
					}
				}
			}
			if !known {
				continue
			}
			if st, ok := in[b]; !ok || !sameSet(st, merged) {
				if ok {
					merged = intersect(st, merged) // monotone descent
				}
				in[b] = merged
				changed = true
			}
		}
	}

	// Final recording pass with settled in-states.
	for _, b := range cfg.Blocks {
		if st, ok := in[b]; ok {
			transfer(b, st, true)
		}
	}
	sort.Strings(sum.acquires)
	return sum
}

// lockStep advances the held set across one statement, optionally
// recording acquires, direct edges and held calls into sum. Nested
// function literals run with their own (empty) lock state and are
// summarized as their own units, so they are skipped here.
func (u *FuncUnit) lockStep(n ast.Node, held []string, record bool, sum *lockSummary) []string {
	if _, ok := n.(*ast.DeferStmt); ok {
		// Deferred unlocks run at return: the lock stays held for the
		// rest of the function. Deferred other calls run at return with
		// whatever is held there — approximated as not held (the common
		// defer is cleanup after unlock); skip entirely.
		return held
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// The launched call runs on its own goroutine with an empty
			// lock state; only its arguments evaluate here.
			return false
		case *ast.CallExpr:
			if cls, op, ok := u.lockOpAt(m); ok {
				switch op {
				case lockAcquire:
					if record {
						addString(&sum.acquires, cls)
						for _, h := range held {
							if h != cls {
								sum.edges = append(sum.edges, lockEdge{from: h, to: cls, pos: m.Pos()})
							}
						}
					}
					held = addHeld(held, cls)
				case lockRelease:
					held = removeHeld(held, cls)
				}
				return false
			}
			if fn := calleeFunc(u.Pkg.Info, m); fn != nil && record && len(held) > 0 {
				sum.heldCalls = append(sum.heldCalls, heldCall{
					held:   append([]string(nil), held...),
					callee: FuncKey(fn),
					pos:    m.Pos(),
				})
			}
		}
		return true
	})
	return held
}

const (
	lockAcquire = iota
	lockRelease
)

// lockOpAt recognises a Lock/RLock/TryLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex and returns the lock class.
func (u *FuncUnit) lockOpAt(call *ast.CallExpr) (string, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn := calleeFunc(u.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := receiverName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", 0, false
	}
	var op int
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", 0, false
	}
	cls, ok := lockClassOf(u.Pkg, sel)
	if !ok {
		return "", 0, false
	}
	return cls, op, true
}

// lockClassOf names the mutex behind a <expr>.Lock selector: the owning
// named struct type and field for field mutexes ("pkg.Type.field", also
// through embedding), or "pkg.var" for package-level mutex variables.
// Local mutex variables have no cross-function identity and yield
// ok=false.
func lockClassOf(pkg *Package, lockSel *ast.SelectorExpr) (string, bool) {
	// Embedded form: s.Lock() — the selection path runs through the
	// embedded mutex field of s's type (Index has a field step before
	// the method step). A direct mu.Lock() has a single-step index and
	// falls through to the explicit-form analysis of the mutex expr.
	if selection := pkg.Info.Selections[lockSel]; selection != nil &&
		selection.Kind() == types.MethodVal && len(selection.Index()) >= 2 {
		named, ok := derefType(selection.Recv()).(*types.Named)
		if !ok {
			return "", false
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return "", false
		}
		f := st.Field(selection.Index()[0])
		return classString(named.Obj(), f.Name()), true
	}
	// Explicit form: <chain>.mu.Lock() — lockSel.X is the mutex expr.
	switch mx := ast.Unparen(lockSel.X).(type) {
	case *ast.SelectorExpr:
		msel := pkg.Info.Selections[mx]
		if msel != nil && msel.Kind() == types.FieldVal {
			named, ok := derefType(msel.Recv()).(*types.Named)
			if !ok {
				return "", false
			}
			return classString(named.Obj(), msel.Obj().Name()), true
		}
		// Qualified package-level var: pkg.mu.Lock().
		if obj, ok := pkg.Info.Uses[mx.Sel].(*types.Var); ok && !obj.IsField() && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return shortPkg(obj.Pkg().Path()) + "." + obj.Name(), true
			}
		}
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[mx].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return shortPkg(obj.Pkg().Path()) + "." + obj.Name(), true
		}
	}
	return "", false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func classString(owner *types.TypeName, field string) string {
	pkg := ""
	if owner.Pkg() != nil {
		pkg = shortPkg(owner.Pkg().Path()) + "."
	}
	return pkg + owner.Name() + "." + field
}

func addHeld(held []string, cls string) []string {
	for _, h := range held {
		if h == cls {
			return held
		}
	}
	return append(held, cls)
}

func removeHeld(held []string, cls string) []string {
	out := held[:0]
	for _, h := range held {
		if h != cls {
			out = append(out, h)
		}
	}
	return out
}

func intersect(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
