// Package maintain implements incremental view maintenance for the
// reproduction: delta propagation through arbitrary algebra expressions
// (in the tradition of Blakeley et al. and Griffin/Libkin, the algorithms
// the paper plugs in, Section 4), the virtual pre-state that answers every
// base-relation reference through the warehouse inverse W⁻¹ — which is
// precisely the paper's "replace any reference to a base relation by its
// inverse" — the update-independent warehouse refresh w' = W(u(W⁻¹(w)))
// (Theorem 4.1), symbolic maintenance-expression derivation (Example 4.1),
// and the σ-view translator showing update independence without a
// complement (end of Section 4).
package maintain

import (
	"fmt"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

// Delta is a change set against a relation-valued expression. Its
// semantics are "delete Del, then insert Ins": the new value is
// (old ∖ Del) ∪ Ins. Ins and Del may overlap (Ins wins); this convention
// makes the propagation rules compositional without per-node
// renormalization.
type Delta struct {
	Ins, Del *relation.Relation
}

// IsEmpty reports whether the delta changes nothing.
func (d Delta) IsEmpty() bool { return d.Ins.IsEmpty() && d.Del.IsEmpty() }

// Size returns the number of changed tuples (insertions + deletions).
func (d Delta) Size() int { return d.Ins.Len() + d.Del.Len() }

// Exact returns the semantically equivalent delta normalized against the
// pre-state relation: every deletion is actually present, every insertion
// actually absent, and the two sets are disjoint. Consumers that keep
// running counters (package aggregate) need exact deltas; ApplyTo works
// with either form.
func (d Delta) Exact(pre *relation.Relation) Delta {
	del := relation.New(d.Del.Attrs()...)
	for t := range d.Del.All() {
		if pre.ContainsAligned(t, d.Del) && !d.Ins.ContainsAligned(t, d.Del) {
			del.Insert(t)
		}
	}
	ins := relation.New(d.Ins.Attrs()...)
	for t := range d.Ins.All() {
		if !pre.ContainsAligned(t, d.Ins) {
			ins.Insert(t)
		}
	}
	return Delta{Ins: ins, Del: del}
}

// ApplyTo mutates the materialized relation: deletions first, then
// insertions, aligning columns by name.
func (d Delta) ApplyTo(r *relation.Relation) {
	for t := range d.Del.All() {
		r.Delete(alignTuple(d.Del, r, t))
	}
	for t := range d.Ins.All() {
		r.Insert(alignTuple(d.Ins, r, t))
	}
}

// node is the per-subexpression result of propagation. The delta is
// computed eagerly (deltas are small); the old and new values of the
// subexpression are *lazy* and memoized, so an unchanged join is never
// recomputed just because a sibling changed — this is what makes the
// incremental path genuinely cheaper than recomputation (experiment E12).
type node struct {
	d     Delta
	attrs []string // output attribute order, available without forcing

	oldFn func() (*relation.Relation, error)
	newFn func() (*relation.Relation, error)
	oldV  *relation.Relation
	newV  *relation.Relation

	// restrictFn computes a probe-restricted old/new value without
	// materializing the full one (see node.restricted); nil means
	// "force the full value and semi-join".
	restrictFn func(which valKind, probe *relation.Relation) (*relation.Relation, error)
}

// valKind selects the pre- or post-state value in restricted evaluation.
type valKind uint8

const (
	oldValue valKind = iota
	newValue
)

// value forces the full old or new value.
func (n *node) value(which valKind) (*relation.Relation, error) {
	if which == oldValue {
		return n.Old()
	}
	return n.New()
}

// restricted returns a relation that agrees with the full old/new value on
// every tuple whose projection onto probe's attributes occurs in probe;
// tuples not matching the probe may or may not appear. Consumers must
// therefore only draw conclusions about probe-matching tuples (the delta
// rules always intersect or join against such candidates). The probe's
// attribute set must be contained in the node's. This is what keeps
// incremental maintenance delta-driven: a small delta probes the big join
// instead of forcing it.
func (n *node) restricted(which valKind, probe *relation.Relation) (*relation.Relation, error) {
	memo := n.oldV
	if which == newValue {
		memo = n.newV
	}
	if memo != nil {
		return relation.SemiJoin(memo, probe), nil
	}
	if n.restrictFn != nil {
		return n.restrictFn(which, probe)
	}
	full, err := n.value(which)
	if err != nil {
		return nil, err
	}
	return relation.SemiJoin(full, probe), nil
}

// Old forces and memoizes the subexpression's pre-state value.
func (n *node) Old() (*relation.Relation, error) {
	if n.oldV != nil {
		return n.oldV, nil
	}
	v, err := n.oldFn()
	if err != nil {
		return nil, err
	}
	n.oldV = v
	return v, nil
}

// New forces and memoizes the subexpression's post-state value. The
// default derivation applies the node's delta to a clone of Old.
func (n *node) New() (*relation.Relation, error) {
	if n.newV != nil {
		return n.newV, nil
	}
	if n.newFn != nil {
		v, err := n.newFn()
		if err != nil {
			return nil, err
		}
		n.newV = v
		return v, nil
	}
	old, err := n.Old()
	if err != nil {
		return nil, err
	}
	v := old.Clone()
	n.d.ApplyTo(v)
	n.newV = v
	return v, nil
}

// Propagate computes the delta of expression e caused by update u, reading
// pre-state values from st only where the delta rules require them. When
// st is a VirtualState backed by a warehouse, the computation never
// touches the sources — this is the maintenance path of Theorem 4.1. The
// update should be normalized against the same pre-state (the rules stay
// correct for unnormalized updates; normalization keeps deltas minimal).
func Propagate(e algebra.Expr, st algebra.State, u *catalog.Update) (Delta, error) {
	n, err := propagate(e, st, u)
	if err != nil {
		return Delta{}, err
	}
	return n.d, nil
}

func propagate(e algebra.Expr, st algebra.State, u *catalog.Update) (*node, error) {
	switch x := e.(type) {
	case *algebra.Base:
		// Against a RestrictedState (the maintainer's VirtualState) the
		// pre-state value stays lazy: restricted probes reconstruct only
		// the matching fraction through the inverse, and the full value is
		// forced only if a propagation rule genuinely needs it. Against
		// plain states the relation is already materialized, so it is
		// simply taken as the memoized old value.
		if rs, ok := st.(RestrictedState); ok {
			if attrs, known := rs.RelationAttrs(x.Name); known {
				return lazyBase(x, rs, u, attrs), nil
			}
		}
		old, ok := st.Relation(x.Name)
		if !ok {
			return nil, fmt.Errorf("maintain: pre-state has no relation %q", x.Name)
		}
		ins := u.Inserts(x.Name)
		del := u.Deletes(x.Name)
		if ins == nil {
			ins = relation.New(old.Attrs()...)
		}
		if del == nil {
			del = relation.New(old.Attrs()...)
		}
		n := &node{d: Delta{Ins: ins, Del: del}, attrs: old.Attrs()}
		n.oldV = old
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			// Semi-join the memoized pre-state instead of cloning the
			// whole relation; for the post-state the (small) delta is
			// applied on top — insertions outside the probe are harmless
			// garbage under the restricted-value contract.
			base := relation.SemiJoin(old, probe)
			if which == newValue {
				n.d.ApplyTo(base)
			}
			return base, nil
		}
		return n, nil

	case *algebra.Empty:
		empty := relation.New(x.Attrs...)
		n := &node{
			d:     Delta{Ins: relation.New(x.Attrs...), Del: relation.New(x.Attrs...)},
			attrs: empty.Attrs(),
		}
		n.oldV, n.newV = empty, empty
		return n, nil

	case *algebra.Select:
		in, err := propagate(x.Input, st, u)
		if err != nil {
			return nil, err
		}
		pred := func(row relation.Row) bool { return algebra.EvalCond(x.Cond, row) }
		n := &node{
			d: Delta{
				Ins: relation.Select(in.d.Ins, pred),
				Del: relation.Select(in.d.Del, pred),
			},
			attrs: in.attrs,
		}
		n.oldFn = func() (*relation.Relation, error) {
			old, err := in.Old()
			if err != nil {
				return nil, err
			}
			return relation.Select(old, pred), nil
		}
		n.newFn = func() (*relation.Relation, error) {
			nv, err := in.New()
			if err != nil {
				return nil, err
			}
			return relation.Select(nv, pred), nil
		}
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			v, err := in.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			return relation.Select(v, pred), nil
		}
		return n, nil

	case *algebra.Project:
		in, err := propagate(x.Input, st, u)
		if err != nil {
			return nil, err
		}
		del := relation.Project(in.d.Del, x.Attrs...)
		ins := relation.Project(in.d.Ins, x.Attrs...)
		// Deleted projections still derivable from the new state must be
		// re-inserted (set semantics under projection). The check probes
		// the input's new value with the deleted tuples instead of forcing
		// it, and only when something was deleted.
		if !del.IsEmpty() {
			nv, err := in.restricted(newValue, del)
			if err != nil {
				return nil, err
			}
			still, err := relation.Intersect(del, relation.Project(nv, x.Attrs...))
			if err != nil {
				return nil, err
			}
			ins.InsertAll(still)
		}
		n := &node{d: Delta{Ins: ins, Del: del}, attrs: ins.Attrs()}
		n.oldFn = func() (*relation.Relation, error) {
			old, err := in.Old()
			if err != nil {
				return nil, err
			}
			return relation.Project(old, x.Attrs...), nil
		}
		n.newFn = func() (*relation.Relation, error) {
			nv, err := in.New()
			if err != nil {
				return nil, err
			}
			return relation.Project(nv, x.Attrs...), nil
		}
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			// probe attrs ⊆ Z ⊆ input attrs, so the probe applies to the
			// input directly; garbage rows project to non-matching tuples
			// and stay harmless.
			v, err := in.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			return relation.Project(v, x.Attrs...), nil
		}
		return n, nil

	case *algebra.Join:
		if len(x.Inputs) == 0 {
			return nil, fmt.Errorf("maintain: join of zero inputs")
		}
		acc, err := propagate(x.Inputs[0], st, u)
		if err != nil {
			return nil, err
		}
		for _, input := range x.Inputs[1:] {
			r, err := propagate(input, st, u)
			if err != nil {
				return nil, err
			}
			acc, err = joinNodes(acc, r)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil

	case *algebra.Union:
		l, err := propagate(x.L, st, u)
		if err != nil {
			return nil, err
		}
		r, err := propagate(x.R, st, u)
		if err != nil {
			return nil, err
		}
		del, err := relation.Union(l.d.Del, r.d.Del)
		if err != nil {
			return nil, err
		}
		ins, err := relation.Union(l.d.Ins, r.d.Ins)
		if err != nil {
			return nil, err
		}
		n := &node{attrs: ins.Attrs()}
		n.oldFn = lazyBinary(l, r, (*node).Old, relation.Union)
		n.newFn = lazyBinary(l, r, (*node).New, relation.Union)
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			lv, err := l.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			rv, err := r.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			return relation.Union(lv, rv)
		}
		// A tuple deleted from one side may survive in the other: the
		// delete-then-insert convention handles it by re-insertion, which
		// probes the union's new value with the deleted tuples.
		if !del.IsEmpty() {
			nv, err := n.restricted(newValue, del)
			if err != nil {
				return nil, err
			}
			still, err := relation.Intersect(del, nv)
			if err != nil {
				return nil, err
			}
			ins.InsertAll(still)
		}
		n.d = Delta{Ins: ins, Del: del}
		return n, nil

	case *algebra.Diff:
		l, err := propagate(x.L, st, u)
		if err != nil {
			return nil, err
		}
		r, err := propagate(x.R, st, u)
		if err != nil {
			return nil, err
		}
		// del' = ΔL⁻ ∪ ΔR⁺ ; ins' = ((ΔL⁺ ∪ ΔR⁻) ∩ newL) ∖ newR, with the
		// two new values forced only when there are candidates.
		del, err := relation.Union(l.d.Del, r.d.Ins)
		if err != nil {
			return nil, err
		}
		cand, err := relation.Union(l.d.Ins, r.d.Del)
		if err != nil {
			return nil, err
		}
		ins := relation.New(cand.Attrs()...)
		if !cand.IsEmpty() {
			// Membership of the few candidates is all that matters, so
			// both sides are probed rather than forced: the restricted
			// values are exact on candidate-matching tuples.
			lNew, err := l.restricted(newValue, cand)
			if err != nil {
				return nil, err
			}
			rNew, err := r.restricted(newValue, cand)
			if err != nil {
				return nil, err
			}
			kept, err := relation.Intersect(cand, lNew)
			if err != nil {
				return nil, err
			}
			ins, err = relation.Diff(kept, rNew)
			if err != nil {
				return nil, err
			}
		}
		n := &node{d: Delta{Ins: ins, Del: del}, attrs: ins.Attrs()}
		n.oldFn = lazyBinary(l, r, (*node).Old, relation.Diff)
		n.newFn = lazyBinary(l, r, (*node).New, relation.Diff)
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			lv, err := l.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			rv, err := r.restricted(which, probe)
			if err != nil {
				return nil, err
			}
			return relation.Diff(lv, rv)
		}
		return n, nil

	case *algebra.Rename:
		in, err := propagate(x.Input, st, u)
		if err != nil {
			return nil, err
		}
		ins, err := relation.Rename(in.d.Ins, x.Mapping)
		if err != nil {
			return nil, err
		}
		del, err := relation.Rename(in.d.Del, x.Mapping)
		if err != nil {
			return nil, err
		}
		wrap := func(get func(*node) (*relation.Relation, error)) func() (*relation.Relation, error) {
			return func() (*relation.Relation, error) {
				v, err := get(in)
				if err != nil {
					return nil, err
				}
				return relation.Rename(v, x.Mapping)
			}
		}
		n := &node{d: Delta{Ins: ins, Del: del}, attrs: ins.Attrs()}
		n.oldFn = wrap((*node).Old)
		n.newFn = wrap((*node).New)
		n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
			// Translate the probe back into the input's attribute space.
			inverse := make(map[string]string, len(x.Mapping))
			for from, to := range x.Mapping {
				inverse[to] = from
			}
			back := make(map[string]string)
			for _, a := range probe.Attrs() {
				if orig, ok := inverse[a]; ok {
					back[a] = orig
				}
			}
			inProbe, err := relation.Rename(probe, back)
			if err != nil {
				return nil, err
			}
			v, err := in.restricted(which, inProbe)
			if err != nil {
				return nil, err
			}
			return relation.Rename(v, x.Mapping)
		}
		return n, nil

	default:
		return nil, fmt.Errorf("maintain: unknown node %T", e)
	}
}

// lazyBase builds the propagation node of a base-relation reference over
// a RestrictedState without forcing its reconstruction: restricted reads
// go through RelationRestricted (probe-sized work), and only a rule that
// needs the complete pre-state forces the full inverse evaluation.
func lazyBase(x *algebra.Base, rs RestrictedState, u *catalog.Update, attrs []string) *node {
	ins := u.Inserts(x.Name)
	del := u.Deletes(x.Name)
	if ins == nil {
		ins = relation.New(attrs...)
	}
	if del == nil {
		del = relation.New(attrs...)
	}
	n := &node{d: Delta{Ins: ins, Del: del}, attrs: attrs}
	n.oldFn = func() (*relation.Relation, error) {
		old, ok := rs.Relation(x.Name)
		if !ok {
			return nil, fmt.Errorf("maintain: pre-state has no relation %q", x.Name)
		}
		return old, nil
	}
	n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
		base, err := rs.RelationRestricted(x.Name, probe)
		if err != nil {
			return nil, err
		}
		if which == newValue {
			// The delta is applied on top; insertions outside the probe
			// are harmless garbage under the restricted-value contract.
			n.d.ApplyTo(base)
		}
		return base, nil
	}
	return n
}

// lazyBinary builds a thunk combining two children through a binary set
// operator, forcing them only when called.
func lazyBinary(l, r *node, get func(*node) (*relation.Relation, error),
	op func(*relation.Relation, *relation.Relation) (*relation.Relation, error)) func() (*relation.Relation, error) {
	return func() (*relation.Relation, error) {
		lv, err := get(l)
		if err != nil {
			return nil, err
		}
		rv, err := get(r)
		if err != nil {
			return nil, err
		}
		return op(lv, rv)
	}
}

// joinNodes combines two propagated inputs through a natural join:
//
//	Δ⁻ = (ΔL⁻ ⋈ oldR) ∪ (oldL ⋈ ΔR⁻)
//	Δ⁺ = (ΔL⁺ ⋈ newR) ∪ (newL ⋈ ΔR⁺)
//
// exact under the delete-then-insert convention. Each term forces the
// sibling's old/new only when its delta side is non-empty, so joins whose
// inputs did not change cost nothing.
func joinNodes(l, r *node) (*node, error) {
	joinAttrs := relation.NewAttrSet(l.attrs...).Union(relation.NewAttrSet(r.attrs...))

	joinTerm := func(delta *relation.Relation, other *node, which valKind) (*relation.Relation, error) {
		if delta.IsEmpty() {
			return nil, nil
		}
		// Only the sibling tuples matching the delta on the shared
		// attributes can join; probe instead of forcing the sibling.
		shared := relation.NewAttrSet(delta.Attrs()...).Intersect(relation.NewAttrSet(other.attrs...))
		var sibling *relation.Relation
		var err error
		if shared.IsEmpty() {
			sibling, err = other.value(which)
		} else {
			sibling, err = other.restricted(which, relation.Project(delta, shared.Sorted()...))
		}
		if err != nil {
			return nil, err
		}
		return relation.NaturalJoin(delta, sibling), nil
	}
	combine := func(a, b *relation.Relation) (*relation.Relation, error) {
		switch {
		case a == nil && b == nil:
			return relation.New(joinAttrs.Sorted()...), nil
		case a == nil:
			return b, nil
		case b == nil:
			return a, nil
		default:
			return relation.Union(a, b)
		}
	}

	del1, err := joinTerm(l.d.Del, r, oldValue)
	if err != nil {
		return nil, err
	}
	del2, err := joinTerm(r.d.Del, l, oldValue)
	if err != nil {
		return nil, err
	}
	del, err := combine(del1, del2)
	if err != nil {
		return nil, err
	}
	ins1, err := joinTerm(l.d.Ins, r, newValue)
	if err != nil {
		return nil, err
	}
	ins2, err := joinTerm(r.d.Ins, l, newValue)
	if err != nil {
		return nil, err
	}
	ins, err := combine(ins1, ins2)
	if err != nil {
		return nil, err
	}

	n := &node{d: Delta{Ins: ins, Del: del}, attrs: ins.Attrs()}
	n.oldFn = lazyJoin(l, r, (*node).Old)
	n.newFn = lazyJoin(l, r, (*node).New)
	n.restrictFn = func(which valKind, probe *relation.Relation) (*relation.Relation, error) {
		children := [2]*node{l, r}
		vals := [2]*relation.Relation{}
		probeAttrs := relation.NewAttrSet(probe.Attrs()...)
		for i, child := range children {
			childShared := probeAttrs.Intersect(relation.NewAttrSet(child.attrs...))
			var err error
			if childShared.IsEmpty() {
				vals[i], err = child.value(which)
			} else {
				vals[i], err = child.restricted(which, relation.Project(probe, childShared.Sorted()...))
			}
			if err != nil {
				return nil, err
			}
		}
		return relation.NaturalJoin(vals[0], vals[1]), nil
	}
	return n, nil
}

func lazyJoin(l, r *node, get func(*node) (*relation.Relation, error)) func() (*relation.Relation, error) {
	return func() (*relation.Relation, error) {
		lv, err := get(l)
		if err != nil {
			return nil, err
		}
		rv, err := get(r)
		if err != nil {
			return nil, err
		}
		return relation.NaturalJoin(lv, rv), nil
	}
}

// alignTuple relays tuple t from src's column order into dst's.
func alignTuple(src, dst *relation.Relation, t relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, dst.Arity())
	for i, a := range dst.Attrs() {
		p, ok := src.Pos(a)
		if !ok {
			panic(fmt.Sprintf("maintain: attribute %q missing while aligning tuple", a))
		}
		out[i] = t[p]
	}
	return out
}
