package maintain

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

// stateFingerprint captures the warehouse state bitwise: every relation
// name, attribute order, and sorted tuple content.
func stateFingerprint(w *warehouse.Warehouse) string {
	names := w.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r, _ := w.Relation(n)
		b.WriteString(n)
		b.WriteByte('[')
		b.WriteString(strings.Join(r.Attrs(), ","))
		b.WriteString("]=")
		b.WriteString(r.Fingerprint())
		b.WriteByte('\n')
	}
	return b.String()
}

// mixedUpdate touches both base relations so the refresh has deltas for
// several warehouse targets.
func mixedUpdate(sc workload.Scenario) *catalog.Update {
	return catalog.NewUpdate().
		MustInsert("Sale", sc.DB, relation.String_("Computer"), relation.String_("Paula")).
		MustInsert("Emp", sc.DB, relation.String_("Zoe"), relation.Int(41)).
		MustDelete("Sale", sc.DB, relation.String_("TV set"), relation.String_("Mary"))
}

// TestAtomicRefreshRollbackEveryK is the fault-injection sweep of the
// atomic-apply guarantee: for every delta-apply position k, a refresh
// failing right after the k-th apply must leave the warehouse bitwise
// unchanged, and retrying the same update afterwards must succeed and
// produce exactly the state a clean refresh produces.
func TestAtomicRefreshRollbackEveryK(t *testing.T) {
	chaos.Reset()
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	u := mixedUpdate(sc)

	// Reference run: count the apply points and capture the clean
	// post-refresh state.
	wRef, compRef := buildWarehouse(t, sc, core.Proposition22(), st)
	chaos.Arm("refresh.apply", 0, nil) // count-only
	if _, err := NewMaintainer(compRef).RefreshContext(context.Background(), wRef, u); err != nil {
		t.Fatal(err)
	}
	applies := chaos.Hits("refresh.apply")
	chaos.Reset()
	if applies < 2 {
		t.Fatalf("scenario exercises only %d apply points; need ≥ 2 for the sweep", applies)
	}
	wantPost := stateFingerprint(wRef)

	for k := uint64(1); k <= applies; k++ {
		t.Run(fmt.Sprintf("fail_after_apply_%d", k), func(t *testing.T) {
			w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
			m := NewMaintainer(comp)
			pre := stateFingerprint(w)

			boom := errors.New("injected crash")
			chaos.Arm("refresh.apply", k, boom)
			defer chaos.Reset()
			_, err := m.RefreshContext(context.Background(), w, u)
			if !errors.Is(err, boom) {
				t.Fatalf("refresh with armed apply %d: err=%v, want injected crash", k, err)
			}
			if got := stateFingerprint(w); got != pre {
				t.Fatalf("warehouse changed by failed refresh (k=%d):\npre:\n%s\npost:\n%s", k, pre, got)
			}

			// A second refresh of the same update succeeds and lands on
			// the clean-run state.
			chaos.Reset()
			if _, err := m.RefreshContext(context.Background(), w, u); err != nil {
				t.Fatalf("retry after rollback: %v", err)
			}
			if got := stateFingerprint(w); got != wantPost {
				t.Fatalf("retried refresh diverged from clean run:\ngot:\n%s\nwant:\n%s", got, wantPost)
			}
			assertTheorem41(t, w, comp, st, u)
		})
	}
}

// failingConsumer errors on its n-th Consume call.
type failingConsumer struct {
	calls, failAt int
}

func (f *failingConsumer) Consume(string, Delta, *relation.Relation) error {
	f.calls++
	if f.calls == f.failAt {
		return errors.New("consumer exploded")
	}
	return nil
}

// TestConsumerErrorRollsBack: a delta consumer failing part-way through
// the refresh aborts it with the warehouse untouched.
func TestConsumerErrorRollsBack(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	m := NewMaintainer(comp)
	m.AddConsumer(&failingConsumer{failAt: 1})
	pre := stateFingerprint(w)
	if _, err := m.RefreshContext(context.Background(), w, mixedUpdate(sc)); err == nil {
		t.Fatal("refresh with failing consumer succeeded")
	}
	if got := stateFingerprint(w); got != pre {
		t.Fatal("warehouse changed by refresh whose consumer failed")
	}
}

// TestCanceledRefreshLeavesStateUntouched extends the PR-1 guarantee to
// the apply loop: cancellation between applies rolls back completely.
func TestCanceledRefreshLeavesStateUntouched(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	m := NewMaintainer(comp)
	pre := stateFingerprint(w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RefreshContext(ctx, w, mixedUpdate(sc)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if got := stateFingerprint(w); got != pre {
		t.Fatal("canceled refresh mutated the warehouse")
	}
}
