package maintain

import (
	"fmt"
	"sort"
	"strings"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/core"
)

// Specification is the complete output of the paper's Section 5 algorithm
// — "our approach proceeds in a number of steps to determine a complement
// C of V, a set of algebraic expressions for computing the answers to
// queries over base data in terms of the warehouse and its complement,
// and a set of algebraic expressions for computing the changes of the
// warehouse and its complement in terms of the base relations and their
// changes":
//
//	Step 1.1  the complement C (Entries of the embedded Complement);
//	Step 1.2  the inverse W⁻¹ (Inverses);
//	Step 2    query translation = substitution of Inverses (the rule is
//	          mechanical, so the specification carries the substitution);
//	Step 3    warehouse-only incremental maintenance programs, one per
//	          warehouse relation and update class (Programs).
//
// Everything is derived at warehouse-definition time; "the warehouse user
// does not need to be aware of complementary views or query rewriting".
type Specification struct {
	Complement *core.Complement
	// Inverses maps every base relation to its warehouse-only expression
	// (Step 1.2; Equation 2/4).
	Inverses map[string]algebra.Expr
	// Programs maps warehouse relation → update class → maintenance
	// program in warehouse-and-delta terms only (Step 3). Update classes
	// are "ins:<R>" and "del:<R>" for every base relation R occurring in
	// the target's definition.
	Programs map[string]map[string]MaintenanceExprs
}

// Specify runs Section 5's Steps 1–3 for the complement's warehouse.
func Specify(comp *core.Complement) (*Specification, error) {
	spec := &Specification{
		Complement: comp,
		Inverses:   comp.InverseMap(),
		Programs:   make(map[string]map[string]MaintenanceExprs),
	}
	db := comp.Database()

	targets := make(map[string]algebra.Expr)
	for _, v := range comp.Views().Views() {
		targets[v.Name] = v.Expr()
	}
	for _, e := range comp.StoredEntries() {
		targets[e.Name] = e.Def
	}
	for name, def := range targets {
		progs := make(map[string]MaintenanceExprs)
		involved := algebra.Bases(def)
		attrs, err := algebra.Attrs(def, db)
		if err != nil {
			return nil, fmt.Errorf("maintain: specification of %s: %w", name, err)
		}
		for _, base := range db.Names() {
			for class, shape := range map[string]Shape{
				"ins:" + base: InsertionsInto(base),
				"del:" + base: DeletionsFrom(base),
			} {
				if !involved.Has(base) {
					// Updates to uninvolved relations never change the
					// target: the program is the explicit no-op.
					progs[class] = MaintenanceExprs{
						Target: name,
						Ins:    algebra.NewEmptySet(attrs),
						Del:    algebra.NewEmptySet(attrs),
					}
					continue
				}
				m, err := Derive(name, def, shape, db)
				if err != nil {
					return nil, fmt.Errorf("maintain: specification of %s under %s: %w", name, class, err)
				}
				progs[class] = TranslateToWarehouse(m, comp)
			}
		}
		spec.Programs[name] = progs
	}
	return spec, nil
}

// TranslateQuery applies Step 2 to a source query: substitution of every
// base relation by its inverse, then pushdown optimization over the
// warehouse name space.
func (s *Specification) TranslateQuery(q algebra.Expr) (algebra.Expr, error) {
	db := s.Complement.Database()
	if _, err := algebra.Attrs(q, db); err != nil {
		return nil, fmt.Errorf("maintain: query invalid over the sources: %w", err)
	}
	res := s.Complement.Resolver()
	t := algebra.Optimize(algebra.Substitute(q, s.Inverses), res)
	if _, err := algebra.Attrs(t, res); err != nil {
		return nil, fmt.Errorf("maintain: translated query invalid: %w", err)
	}
	return t, nil
}

// String renders the whole specification as the document Section 5
// describes: complement, inverses, and per-relation maintenance programs.
func (s *Specification) String() string {
	var b strings.Builder
	b.WriteString("== Step 1.1: complement ==\n")
	for _, e := range s.Complement.Entries() {
		fmt.Fprintf(&b, "%s = %s", e.Name, e.Def)
		if e.AlwaysEmpty {
			b.WriteString("   (always empty, not stored)")
		}
		b.WriteByte('\n')
	}
	b.WriteString("\n== Step 1.2: inverse mapping W⁻¹ ==\n")
	bases := make([]string, 0, len(s.Inverses))
	for base := range s.Inverses {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		fmt.Fprintf(&b, "%s = %s\n", base, s.Inverses[base])
	}
	b.WriteString("\n== Step 2: query translation ==\n")
	b.WriteString("substitute the inverse for every base relation, then push selections/projections down\n")
	b.WriteString("\n== Step 3: maintenance programs (warehouse-only) ==\n")
	targets := make([]string, 0, len(s.Programs))
	for t := range s.Programs {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, target := range targets {
		classes := make([]string, 0, len(s.Programs[target]))
		for c := range s.Programs[target] {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, class := range classes {
			p := s.Programs[target][class]
			fmt.Fprintf(&b, "[%s] %s:\n  gains %s\n  loses %s\n", class, target, p.Ins, p.Del)
		}
	}
	return b.String()
}
