package maintain

import (
	"math/rand"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

// checkDelta asserts the fundamental delta property for expression e:
// applying the propagated delta to the old value yields exactly the
// expression's value on the post-state.
func checkDelta(t *testing.T, e algebra.Expr, st *catalog.State, u *catalog.Update) {
	t.Helper()
	nu := u.Normalize(st)
	old, err := algebra.Eval(e, st)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	d, err := Propagate(e, st, nu)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	got := old.Clone()
	d.ApplyTo(got)

	post := st.Clone()
	if err := nu.Apply(post); err != nil {
		t.Fatal(err)
	}
	want, err := algebra.Eval(e, post)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("delta wrong for %s under\n%s\ngot  %v\nwant %v", e, nu, got, want)
	}
}

func TestPropagateFigure1Insertion(t *testing.T) {
	// The paper's driving update: insert ⟨Computer, Paula⟩ into Sale.
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB,
		relation.String_("Computer"), relation.String_("Paula"))

	sold := algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp"))
	d, err := Propagate(sold, st, u.Normalize(st))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one new Sold tuple: ⟨Computer, Paula, 32⟩.
	if d.Del.Len() != 0 {
		t.Errorf("deletions = %v", d.Del)
	}
	ins := d.Ins
	if ins.Len() != 1 {
		t.Fatalf("insertions = %v", ins)
	}
	tu := ins.SortedTuples()[0]
	get := func(a string) relation.Value { return ins.Get(tu, a) }
	if get("item").AsString() != "Computer" || get("clerk").AsString() != "Paula" || get("age").AsInt() != 32 {
		t.Errorf("wrong join tuple: %v", tu)
	}
	checkDelta(t, sold, st, u)
}

func TestPropagateAllOperators(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	u := catalog.NewUpdate().
		MustInsert("Sale", sc.DB, relation.String_("Computer"), relation.String_("Paula")).
		MustInsert("Emp", sc.DB, relation.String_("Zoe"), relation.Int(41)).
		MustDelete("Sale", sc.DB, relation.String_("VCR"), relation.String_("Mary")).
		MustDelete("Emp", sc.DB, relation.String_("John"), relation.Int(25))

	exprs := []algebra.Expr{
		algebra.NewBase("Sale"),
		algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(24))),
		algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
		algebra.NewUnion(
			algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
			algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
		algebra.NewRename(algebra.NewBase("Emp"), map[string]string{"clerk": "person"}),
		algebra.NewProject(
			algebra.NewSelect(
				algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
				algebra.AttrCmpConst("age", algebra.OpLt, relation.Int(40))),
			"item", "clerk"),
		// The complement expression itself.
		algebra.NewDiff(algebra.NewBase("Emp"),
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk", "age")),
	}
	for _, e := range exprs {
		checkDelta(t, e, st, u)
	}
}

// TestPropagateRandomized drives the delta rules through random states,
// random updates, and every operator shape, comparing against recompute.
func TestPropagateRandomized(t *testing.T) {
	sc := workload.Figure1(false)
	gen := workload.NewGen(sc.DB, 21)
	exprs := []algebra.Expr{
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
		algebra.NewUnion(
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk"),
			algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewProject(
			algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGe, relation.Int(25))),
			"clerk"),
		algebra.NewDiff(algebra.NewBase("Emp"),
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk", "age")),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		st := gen.State(6 + rng.Intn(10))
		u := gen.Update(st, 1+rng.Intn(5), 1+rng.Intn(5))
		for _, e := range exprs {
			checkDelta(t, e, st, u)
		}
	}
}

// TestPropagateExample23 exercises deltas through the three-relation
// constraint scenario, including the Theorem 2.2 complement definitions.
func TestPropagateExample23(t *testing.T) {
	sc := workload.Example23(workload.E23AllKeysAndINDs, true)
	gen := workload.NewGen(sc.DB, 33)
	// Maintain the view definitions and all complement definitions.
	var exprs []algebra.Expr
	for _, v := range sc.Views.Views() {
		exprs = append(exprs, v.Expr())
	}
	for i := 0; i < 25; i++ {
		st := gen.State(8)
		u := gen.Update(st, 3, 2)
		for _, e := range exprs {
			checkDelta(t, e, st, u)
		}
	}
}

func TestDeltaBookkeeping(t *testing.T) {
	d := Delta{Ins: relation.New("a"), Del: relation.New("a")}
	if !d.IsEmpty() || d.Size() != 0 {
		t.Error("empty delta misreported")
	}
	d.Ins.InsertValues(relation.Int(1))
	d.Del.InsertValues(relation.Int(2))
	if d.IsEmpty() || d.Size() != 2 {
		t.Error("nonempty delta misreported")
	}
	r := relation.New("a")
	r.InsertValues(relation.Int(2))
	r.InsertValues(relation.Int(3))
	d.ApplyTo(r)
	want := relation.New("a")
	want.InsertValues(relation.Int(1))
	want.InsertValues(relation.Int(3))
	if !r.Equal(want) {
		t.Errorf("ApplyTo result = %v", r)
	}
}

func TestDeltaOverlapConvention(t *testing.T) {
	// A tuple in both Del and Ins ends up present (delete-then-insert).
	d := Delta{Ins: relation.New("a"), Del: relation.New("a")}
	d.Ins.InsertValues(relation.Int(1))
	d.Del.InsertValues(relation.Int(1))
	r := relation.New("a")
	r.InsertValues(relation.Int(1))
	d.ApplyTo(r)
	if !r.Contains(relation.Tuple{relation.Int(1)}) {
		t.Error("insert must win over delete")
	}
}

func TestPropagateErrors(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	u := catalog.NewUpdate()
	if _, err := Propagate(algebra.NewBase("Nope"), st, u); err == nil {
		t.Error("unknown base accepted")
	}
	if _, err := Propagate(&algebra.Join{}, st, u); err == nil {
		t.Error("empty join accepted")
	}
}
