package maintain

import (
	"fmt"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
)

// This file derives maintenance expressions symbolically, reproducing
// Example 4.1: given a view definition and the shape of an update (which
// relations receive insertions/deletions), it produces algebra expressions
// for the view's insert- and delete-sets in terms of the base relations
// and the update's delta relations — and, after inverse substitution, in
// terms of warehouse relations and delta relations only.

// InsName returns the name of the insert-delta relation for a base
// relation (the paper's "s" in Example 4.1 is InsName("Sale")).
func InsName(base string) string { return "Δ+" + base }

// DelName returns the name of the delete-delta relation for a base
// relation.
func DelName(base string) string { return "Δ-" + base }

// Shape describes which delta relations an update class provides; the
// derivation replaces the others by the empty relation, so the resulting
// expressions collapse to the paper's per-update-kind maintenance
// expressions.
type Shape struct {
	Ins map[string]bool
	Del map[string]bool
}

// InsertionsInto returns the shape of an update inserting into the given
// relations only.
func InsertionsInto(bases ...string) Shape {
	s := Shape{Ins: map[string]bool{}, Del: map[string]bool{}}
	for _, b := range bases {
		s.Ins[b] = true
	}
	return s
}

// DeletionsFrom returns the shape of an update deleting from the given
// relations only.
func DeletionsFrom(bases ...string) Shape {
	s := Shape{Ins: map[string]bool{}, Del: map[string]bool{}}
	for _, b := range bases {
		s.Del[b] = true
	}
	return s
}

// MaintenanceExprs is a symbolically derived maintenance program for one
// warehouse relation: new value = (old ∖ Del) ∪ Ins, where Ins/Del are
// expressions over base relations (or warehouse relations, after
// TranslateToWarehouse) plus delta relations.
type MaintenanceExprs struct {
	// Target is the maintained warehouse relation's name.
	Target string
	// Ins and Del define the insert- and delete-sets.
	Ins, Del algebra.Expr
}

// String renders the program in the style of Example 4.1.
func (m MaintenanceExprs) String() string {
	return fmt.Sprintf("%s' = (%s ∖ [%s]) ∪ [%s]", m.Target, m.Target, m.Del, m.Ins)
}

// DeltaResolver returns the name space for symbolic maintenance
// expressions over the sources: all base relations plus their delta
// relations (each with the base's attribute set).
func DeltaResolver(db *catalog.Database) algebra.MapResolver {
	m := make(algebra.MapResolver)
	for _, name := range db.Names() {
		sc, _ := db.Schema(name)
		m[name] = sc.AttrSet()
		m[InsName(name)] = sc.AttrSet()
		m[DelName(name)] = sc.AttrSet()
	}
	return m
}

// Derive produces the maintenance expressions for target = e under update
// shape s, simplified against db's delta resolver. The expressions follow
// the same rules as the runtime Propagate, so they are exact (not
// over-approximations) under the delete-then-insert convention.
func Derive(target string, e algebra.Expr, s Shape, db *catalog.Database) (MaintenanceExprs, error) {
	res := DeltaResolver(db)
	if _, err := algebra.Attrs(e, db); err != nil {
		return MaintenanceExprs{}, fmt.Errorf("maintain: cannot derive maintenance for invalid expression: %w", err)
	}
	sym := symbolic(e, s, db)
	return MaintenanceExprs{
		Target: target,
		Ins:    algebra.Simplify(sym.ins, res),
		Del:    algebra.Simplify(sym.del, res),
	}, nil
}

// TranslateToWarehouse substitutes every base-relation reference in the
// maintenance expressions by its inverse over warehouse names, yielding
// the paper's final, warehouse-only maintenance expressions of Example
// 4.1. Delta relations are left untouched (they are the reported update).
func TranslateToWarehouse(m MaintenanceExprs, comp *core.Complement) MaintenanceExprs {
	inv := comp.InverseMap()
	res := warehouseDeltaResolver(comp)
	return MaintenanceExprs{
		Target: m.Target,
		Ins:    algebra.Simplify(algebra.Substitute(m.Ins, inv), res),
		Del:    algebra.Simplify(algebra.Substitute(m.Del, inv), res),
	}
}

// warehouseDeltaResolver is the warehouse name space plus delta names.
func warehouseDeltaResolver(comp *core.Complement) algebra.MapResolver {
	m := comp.Resolver()
	db := comp.Database()
	for _, name := range db.Names() {
		sc, _ := db.Schema(name)
		m[InsName(name)] = sc.AttrSet()
		m[DelName(name)] = sc.AttrSet()
	}
	return m
}

// symNode carries the four expressions tracked per subexpression.
type symNode struct {
	old, new, ins, del algebra.Expr
}

// symbolic mirrors the runtime propagation rules at the expression level.
func symbolic(e algebra.Expr, s Shape, db *catalog.Database) symNode {
	switch x := e.(type) {
	case *algebra.Base:
		sc, _ := db.Schema(x.Name)
		attrs := sc.AttrSet()
		var ins, del algebra.Expr
		if s.Ins[x.Name] {
			ins = algebra.NewBase(InsName(x.Name))
		} else {
			ins = algebra.NewEmptySet(attrs)
		}
		if s.Del[x.Name] {
			del = algebra.NewBase(DelName(x.Name))
		} else {
			del = algebra.NewEmptySet(attrs)
		}
		old := algebra.NewBase(x.Name)
		return symNode{
			old: old,
			new: algebra.NewUnion(algebra.NewDiff(algebra.Clone(old), algebra.Clone(del)), algebra.Clone(ins)),
			ins: ins,
			del: del,
		}

	case *algebra.Empty:
		em := algebra.Clone(x)
		return symNode{old: em, new: algebra.Clone(em), ins: algebra.Clone(em), del: algebra.Clone(em)}

	case *algebra.Select:
		in := symbolic(x.Input, s, db)
		wrap := func(e algebra.Expr) algebra.Expr {
			return algebra.NewSelect(e, algebra.CloneCond(x.Cond))
		}
		return symNode{old: wrap(in.old), new: wrap(in.new), ins: wrap(in.ins), del: wrap(in.del)}

	case *algebra.Project:
		in := symbolic(x.Input, s, db)
		proj := func(e algebra.Expr) algebra.Expr { return algebra.NewProject(e, x.Attrs...) }
		del := proj(in.del)
		// ins = π(insIn) ∪ (π(delIn) ∩ π(newIn)), with a ∩ b = a ∖ (a ∖ b).
		ins := algebra.NewUnion(proj(in.ins), intersectExpr(proj(algebra.Clone(in.del)), proj(in.new)))
		return symNode{old: proj(in.old), new: proj(algebra.Clone(in.new)), ins: ins, del: del}

	case *algebra.Join:
		acc := symbolic(x.Inputs[0], s, db)
		for _, input := range x.Inputs[1:] {
			r := symbolic(input, s, db)
			acc = symNode{
				old: algebra.NewJoin(acc.old, r.old),
				new: algebra.NewJoin(acc.new, r.new),
				del: algebra.NewUnion(
					algebra.NewJoin(acc.del, algebra.Clone(r.old)),
					algebra.NewJoin(algebra.Clone(acc.old), r.del)),
				ins: algebra.NewUnion(
					algebra.NewJoin(acc.ins, algebra.Clone(r.new)),
					algebra.NewJoin(algebra.Clone(acc.new), r.ins)),
			}
		}
		return acc

	case *algebra.Union:
		l := symbolic(x.L, s, db)
		r := symbolic(x.R, s, db)
		del := algebra.NewUnion(l.del, r.del)
		newV := algebra.NewUnion(l.new, r.new)
		ins := algebra.NewUnion(
			algebra.NewUnion(l.ins, r.ins),
			intersectExpr(algebra.Clone(del), algebra.Clone(newV)))
		return symNode{old: algebra.NewUnion(l.old, r.old), new: newV, ins: ins, del: del}

	case *algebra.Diff:
		l := symbolic(x.L, s, db)
		r := symbolic(x.R, s, db)
		del := algebra.NewUnion(l.del, r.ins)
		cand := algebra.NewUnion(l.ins, r.del)
		ins := algebra.NewDiff(intersectExpr(cand, algebra.Clone(l.new)), algebra.Clone(r.new))
		return symNode{
			old: algebra.NewDiff(l.old, r.old),
			new: algebra.NewDiff(l.new, r.new),
			ins: ins,
			del: del,
		}

	case *algebra.Rename:
		in := symbolic(x.Input, s, db)
		wrap := func(e algebra.Expr) algebra.Expr { return algebra.NewRename(e, x.Mapping) }
		return symNode{old: wrap(in.old), new: wrap(in.new), ins: wrap(in.ins), del: wrap(in.del)}

	default:
		panic(fmt.Sprintf("maintain: unknown node %T", e))
	}
}

// intersectExpr encodes a ∩ b as a ∖ (a ∖ b) (the algebra has no
// intersection primitive, matching the paper's operator set).
func intersectExpr(a, b algebra.Expr) algebra.Expr {
	return algebra.NewDiff(a, algebra.NewDiff(algebra.Clone(a), b))
}

// EvalMaintenance evaluates derived maintenance expressions against a
// state extended with the update's delta relations, returning the
// resulting Delta. The state may be real or virtual; with a warehouse-
// translated program and a warehouse state this is a fully independent
// evaluation path, used to cross-check the runtime propagation.
func EvalMaintenance(m MaintenanceExprs, st algebra.State, u *catalog.Update, db *catalog.Database) (Delta, error) {
	ext := deltaState{base: st, u: u, db: db}
	ins, err := algebra.EvalCtx(nil, m.Ins, ext)
	if err != nil {
		return Delta{}, err
	}
	del, err := algebra.EvalCtx(nil, m.Del, ext)
	if err != nil {
		return Delta{}, err
	}
	return Delta{Ins: ins, Del: del}, nil
}

// deltaState overlays delta relations onto an existing state.
type deltaState struct {
	base algebra.State
	u    *catalog.Update
	db   *catalog.Database
}

// Relation implements algebra.State.
func (d deltaState) Relation(name string) (*relation.Relation, bool) {
	for _, b := range d.db.Names() {
		switch name {
		case InsName(b):
			if r := d.u.Inserts(b); r != nil {
				return r, true
			}
			sc, _ := d.db.Schema(b)
			return relation.NewFromSchema(sc), true
		case DelName(b):
			if r := d.u.Deletes(b); r != nil {
				return r, true
			}
			sc, _ := d.db.Schema(b)
			return relation.NewFromSchema(sc), true
		}
	}
	return d.base.Relation(name)
}
