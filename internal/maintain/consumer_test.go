package maintain_test

import (
	"testing"

	"dwcomplement/internal/aggregate"
	"dwcomplement/internal/core"
	"dwcomplement/internal/maintain"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

// TestAggregateConsumerOnWarehouse attaches an aggregate summary over the
// Sold view and checks it stays exact through random refreshes — the
// Section 5 layering (fact tables via complements, aggregates via
// incremental summary maintenance) on the plain warehouse.
func TestAggregateConsumerOnWarehouse(t *testing.T) {
	sc := workload.Figure1(false)
	comp, err := core.Compute(sc.DB, sc.Views, core.Proposition22())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(sc.DB, 77)
	st := gen.State(15)
	w := warehouse.New(comp)
	if err := w.Initialize(st); err != nil {
		t.Fatal(err)
	}

	perClerk := aggregate.New("SalesPerClerk", "Sold", []string{"clerk"}, aggregate.Count, "")
	sold, _ := w.Relation("Sold")
	if err := perClerk.Initialize(sold); err != nil {
		t.Fatal(err)
	}
	m := maintain.NewMaintainer(comp)
	m.AddConsumer(perClerk)

	cur := st.Clone()
	for round := 0; round < 20; round++ {
		u := gen.Update(cur, 3, 2)
		if _, err := m.Refresh(w, u); err != nil {
			t.Fatal(err)
		}
		if err := u.Apply(cur); err != nil {
			t.Fatal(err)
		}
		post, _ := w.Relation("Sold")
		want, err := aggregate.Recompute(perClerk, post)
		if err != nil {
			t.Fatal(err)
		}
		if got := perClerk.Result(); !got.Equal(want) {
			t.Fatalf("round %d: aggregate drifted:\ngot  %v\nwant %v", round, got, want)
		}
	}
}

// TestDeltaExact covers the normalization helper the consumers rely on.
func TestDeltaExact(t *testing.T) {
	pre := relation.New("a")
	pre.InsertValues(relation.Int(1))
	pre.InsertValues(relation.Int(2))

	d := maintain.Delta{Ins: relation.New("a"), Del: relation.New("a")}
	d.Ins.InsertValues(relation.Int(1)) // already present: dropped
	d.Ins.InsertValues(relation.Int(3)) // genuinely new: kept
	d.Del.InsertValues(relation.Int(2)) // present: kept
	d.Del.InsertValues(relation.Int(9)) // absent: dropped

	e := d.Exact(pre)
	if e.Ins.Len() != 1 || !e.Ins.Contains(relation.Tuple{relation.Int(3)}) {
		t.Errorf("Ins = %v", e.Ins)
	}
	if e.Del.Len() != 1 || !e.Del.Contains(relation.Tuple{relation.Int(2)}) {
		t.Errorf("Del = %v", e.Del)
	}

	// Overlap: delete+insert of a present tuple is a no-op on both sides.
	o := maintain.Delta{Ins: relation.New("a"), Del: relation.New("a")}
	o.Ins.InsertValues(relation.Int(1))
	o.Del.InsertValues(relation.Int(1))
	e = o.Exact(pre)
	if !e.IsEmpty() {
		t.Errorf("overlap not dropped: %v / %v", e.Ins, e.Del)
	}
	// Semantics preserved: applying d vs e to clones of pre agree.
	a, b := pre.Clone(), pre.Clone()
	d.ApplyTo(a)
	d.Exact(pre).ApplyTo(b)
	if !a.Equal(b) {
		t.Error("Exact changed delta semantics")
	}
}
