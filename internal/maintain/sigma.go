package maintain

import (
	"fmt"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// SigmaMaintainer implements the observation closing Section 4: a
// warehouse consisting solely of selection views W = σ_c(R) is
// update-independent without any complement, because
//
//	σ_c(r ∪ Δr) = σ_c(r) ∪ σ_c(Δr)   and   σ_c(r ∖ Δr) = σ_c(r) ∖ σ_c(Δr),
//
// so every source update translates directly into a warehouse update from
// Δr and the view definition alone. Such warehouses are generally NOT
// query-independent (tuples failing the selection are unrecoverable);
// experiment E10 exhibits the witness.
type SigmaMaintainer struct {
	views *view.Set
	db    *catalog.Database
}

// NewSigmaMaintainer validates that every view is a σ-view — a single base
// relation, identity projection, arbitrary selection — and returns the
// complement-free maintainer.
func NewSigmaMaintainer(db *catalog.Database, views *view.Set) (*SigmaMaintainer, error) {
	for _, v := range views.Views() {
		if len(v.Bases) != 1 {
			return nil, fmt.Errorf("maintain: %s is not a σ-view: joins %d relations", v.Name, len(v.Bases))
		}
		sc, ok := db.Schema(v.Bases[0])
		if !ok {
			return nil, fmt.Errorf("maintain: %s references unknown relation %q: %w", v.Name, v.Bases[0], algebra.ErrUnknownRelation)
		}
		if !v.ProjSet().Equal(sc.AttrSet()) {
			return nil, fmt.Errorf("maintain: %s is not a σ-view: projects %v instead of %v",
				v.Name, v.ProjSet(), sc.AttrSet())
		}
	}
	return &SigmaMaintainer{views: views, db: db}, nil
}

// Materialize evaluates all σ-views on a database state.
func (m *SigmaMaintainer) Materialize(st algebra.State) (algebra.MapState, error) {
	out := make(algebra.MapState, m.views.Len())
	for _, v := range m.views.Views() {
		r, err := v.EvalCtx(nil, st)
		if err != nil {
			return nil, err
		}
		out[v.Name] = r
	}
	return out, nil
}

// Refresh applies the source update to the σ-view warehouse state in
// place, using only the update and the view definitions — no complement,
// no source access, no reconstruction.
func (m *SigmaMaintainer) Refresh(w algebra.MapState, u *catalog.Update) error {
	for _, v := range m.views.Views() {
		r, ok := w[v.Name]
		if !ok {
			return fmt.Errorf("maintain: warehouse state lacks %q", v.Name)
		}
		base := v.Bases[0]
		pred := func(row relation.Row) bool { return algebra.EvalCond(v.Cond, row) }
		if del := u.Deletes(base); del != nil {
			for t := range relation.Select(del, pred).All() {
				r.Delete(alignTuple(del, r, t))
			}
		}
		if ins := u.Inserts(base); ins != nil {
			for t := range relation.Select(ins, pred).All() {
				r.Insert(alignTuple(ins, r, t))
			}
		}
	}
	return nil
}
