package maintain

import (
	"fmt"
	"sync"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
)

// VirtualState resolves base-relation references by evaluating their
// inverse expressions against a warehouse state — the mechanical form of
// the paper's instruction to "replace any reference to a base relation
// occurring in the maintenance expression by its inverse" (Section 4).
// Reconstructed relations are cached for the lifetime of the VirtualState,
// which is one refresh round.
type VirtualState struct {
	inverses map[string]algebra.Expr
	w        algebra.State

	mu    sync.Mutex
	cache map[string]*relation.Relation
}

// NewVirtualState builds a virtual pre-state over the warehouse state.
func NewVirtualState(comp *core.Complement, w algebra.State) *VirtualState {
	return &VirtualState{
		inverses: comp.InverseMap(),
		w:        w,
		cache:    make(map[string]*relation.Relation),
	}
}

// Relation implements algebra.State: base names resolve through W⁻¹.
// Safe for concurrent use; reconstruction of each base happens once and
// the cached relations are treated as read-only.
func (v *VirtualState) Relation(name string) (*relation.Relation, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if r, ok := v.cache[name]; ok {
		return r, true
	}
	inv, ok := v.inverses[name]
	if !ok {
		return nil, false
	}
	r, err := algebra.Eval(inv, v.w)
	if err != nil {
		return nil, false
	}
	v.cache[name] = r
	return r, true
}

// RefreshStats reports what a refresh did, for benchmarks and logs.
type RefreshStats struct {
	// Changed maps each warehouse relation to the number of tuples its
	// delta touched (insertions + deletions).
	Changed map[string]int
	// UpdateSize is the size of the normalized source update.
	UpdateSize int
}

// Total returns the total number of warehouse tuple changes.
func (s RefreshStats) Total() int {
	n := 0
	for _, c := range s.Changed {
		n += c
	}
	return n
}

// DeltaConsumer receives the exact per-relation delta of every refresh,
// after it has been applied. Downstream materializations — the aggregate
// summary tables of Section 5 (package aggregate) — hook in here.
type DeltaConsumer interface {
	// Consume is called once per refreshed warehouse relation with the
	// exact delta and the post-state relation.
	Consume(target string, d Delta, post *relation.Relation) error
}

// Maintainer applies source updates to a warehouse incrementally and
// update-independently: all information comes from the warehouse state and
// the reported update, never from the sources (Theorem 4.1).
type Maintainer struct {
	comp      *core.Complement
	consumers []DeltaConsumer
	parallel  bool
}

// NewMaintainer returns a maintainer for warehouses built from the
// complement.
func NewMaintainer(comp *core.Complement) *Maintainer {
	return &Maintainer{comp: comp}
}

// AddConsumer registers a downstream delta consumer (e.g. an aggregate
// view over one of the maintained relations).
func (m *Maintainer) AddConsumer(c DeltaConsumer) {
	m.consumers = append(m.consumers, c)
}

// SetParallel toggles concurrent delta computation: the per-relation
// deltas of one refresh are independent (they read the shared pre-state
// but write nothing), so wide warehouses can propagate them on separate
// goroutines. Application remains serialized.
func (m *Maintainer) SetParallel(p bool) {
	m.parallel = p
}

// Refresh computes w' = W(u(W⁻¹(w))) incrementally and applies it to the
// warehouse in place. Every view and stored complement gets its delta from
// Propagate, with all pre-state reads answered by the VirtualState. The
// deltas for all relations are computed against the same pre-state before
// any of them is applied.
func (m *Maintainer) Refresh(w *warehouse.Warehouse, u *catalog.Update) (RefreshStats, error) {
	stats := RefreshStats{Changed: make(map[string]int)}
	vst := NewVirtualState(m.comp, w)
	nu, err := NormalizeUpdate(u, vst, m.comp)
	if err != nil {
		return stats, err
	}
	stats.UpdateSize = nu.Size()

	type target struct {
		name string
		def  algebra.Expr
	}
	var targets []target
	for _, v := range m.comp.Views().Views() {
		targets = append(targets, target{v.Name, v.Expr()})
	}
	for _, e := range m.comp.StoredEntries() {
		targets = append(targets, target{e.Name, e.Def})
	}

	type pending struct {
		name string
		d    Delta
	}
	deltas := make([]pending, len(targets))
	if m.parallel && len(targets) > 1 {
		// Prime the virtual pre-state for the touched relations so the
		// goroutines share reconstructions instead of racing to build them
		// (the cache itself is mutex-guarded either way).
		for _, name := range nu.Touched() {
			vst.Relation(name)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(targets))
		for i, tg := range targets {
			wg.Add(1)
			go func(i int, tg target) {
				defer wg.Done()
				d, err := Propagate(tg.def, vst, nu)
				if err != nil {
					errs[i] = fmt.Errorf("maintain: %s: %w", tg.name, err)
					return
				}
				deltas[i] = pending{tg.name, d}
			}(i, tg)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return stats, err
			}
		}
	} else {
		for i, tg := range targets {
			d, err := Propagate(tg.def, vst, nu)
			if err != nil {
				return stats, fmt.Errorf("maintain: %s: %w", tg.name, err)
			}
			deltas[i] = pending{tg.name, d}
		}
	}
	for _, p := range deltas {
		r, ok := w.Relation(p.name)
		if !ok {
			return stats, fmt.Errorf("maintain: warehouse has no relation %q", p.name)
		}
		exact := p.d.Exact(r)
		exact.ApplyTo(r)
		stats.Changed[p.name] = exact.Size()
		for _, consumer := range m.consumers {
			if err := consumer.Consume(p.name, exact, r); err != nil {
				return stats, fmt.Errorf("maintain: consumer for %s: %w", p.name, err)
			}
		}
	}
	return stats, nil
}

// RefreshByRecompute is the semantic reference implementation of Theorem
// 4.1: reconstruct all base relations through W⁻¹, apply the update, and
// re-materialize every warehouse relation from scratch. It is
// update-independent too (no source access) but pays full recomputation;
// experiment E12 benchmarks the two against each other, and the test suite
// checks they agree tuple-for-tuple.
func (m *Maintainer) RefreshByRecompute(w *warehouse.Warehouse, u *catalog.Update) error {
	bases, err := w.ReconstructBases()
	if err != nil {
		return err
	}
	db := m.comp.Database()
	st := db.NewState()
	for name, r := range bases {
		var insertErr error
		r.Each(func(t relation.Tuple) {
			if insertErr != nil {
				return
			}
			cur, _ := st.Relation(name)
			if _, err := st.Insert(name, alignTuple(r, cur, t)); err != nil {
				insertErr = err
			}
		})
		if insertErr != nil {
			return insertErr
		}
	}
	if err := u.Apply(st); err != nil {
		return err
	}
	return w.Initialize(st)
}

// NormalizeUpdate normalizes the update against the virtual pre-state
// (inserts already present are dropped, deletes of absent tuples are
// dropped, insert+delete pairs become no-ops) without ever touching the
// real sources. Star warehouses and other callers with their own refresh
// loops use it before Propagate. Only membership checks against the
// reconstructed relations are performed — no state copies.
func NormalizeUpdate(u *catalog.Update, vst *VirtualState, comp *core.Complement) (*catalog.Update, error) {
	db := comp.Database()
	out := catalog.NewUpdate()
	for _, name := range u.Touched() {
		cur, ok := vst.Relation(name)
		if !ok {
			return nil, fmt.Errorf("maintain: no inverse for updated relation %q", name)
		}
		sc, ok := db.Schema(name)
		if !ok {
			return nil, fmt.Errorf("maintain: update references unknown relation %q", name)
		}
		schemaAttrs := sc.AttrNames()
		ins, del := u.Inserts(name), u.Deletes(name)
		if ins != nil {
			var insertErr error
			ins.Each(func(t relation.Tuple) {
				if insertErr != nil {
					return
				}
				if cur.ContainsAligned(t, ins) {
					return // already present (covers delete+re-insert too)
				}
				if del != nil && del.ContainsAligned(t, ins) {
					return // insert+delete of an absent tuple: no-op
				}
				insertErr = out.Insert(name, db, alignToAttrs(ins, schemaAttrs, t))
			})
			if insertErr != nil {
				return nil, insertErr
			}
		}
		if del != nil {
			var delErr error
			del.Each(func(t relation.Tuple) {
				if delErr != nil {
					return
				}
				if !cur.ContainsAligned(t, del) {
					return // absent: nothing to delete
				}
				if ins != nil && ins.ContainsAligned(t, del) {
					return // delete+re-insert of a present tuple: no-op
				}
				delErr = out.Delete(name, db, alignToAttrs(del, schemaAttrs, t))
			})
			if delErr != nil {
				return nil, delErr
			}
		}
	}
	return out, nil
}

// alignToAttrs lays out tuple t (in src's column order) according to the
// given attribute-name order.
func alignToAttrs(src *relation.Relation, attrs []string, t relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, len(attrs))
	for i, a := range attrs {
		p, ok := src.Pos(a)
		if !ok {
			panic(fmt.Sprintf("maintain: attribute %q missing while aligning tuple", a))
		}
		out[i] = t[p]
	}
	return out
}
