package maintain

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/trace"
	"dwcomplement/internal/warehouse"
)

// RestrictedState is implemented by states that can answer probe-
// restricted base-relation lookups without materializing the full
// relation. Propagation uses it to stay delta-driven: a refresh touching
// two tuples reconstructs two tuples' worth of pre-state, not the whole
// database.
type RestrictedState interface {
	algebra.State
	// RelationRestricted returns a freshly allocated relation agreeing
	// with Relation(name) on every tuple matching the probe (the
	// restricted-value contract of algebra.EvalRestricted). The caller
	// may mutate the result.
	RelationRestricted(name string, probe *relation.Relation) (*relation.Relation, error)
	// RelationAttrs returns the attribute order of the named relation
	// without forcing its value.
	RelationAttrs(name string) ([]string, bool)
}

// VirtualState resolves base-relation references by evaluating their
// inverse expressions against a warehouse state — the mechanical form of
// the paper's instruction to "replace any reference to a base relation
// occurring in the maintenance expression by its inverse" (Section 4).
// Reconstructed relations are cached for the lifetime of the VirtualState,
// which is one refresh round. It implements RestrictedState, answering
// probe-restricted lookups through algebra.EvalRestricted so small deltas
// never force a full reconstruction.
type VirtualState struct {
	inverses map[string]algebra.Expr
	attrs    map[string][]string
	w        algebra.State
	ec       *algebra.EvalContext

	mu    sync.Mutex
	cache map[string]*relation.Relation

	// Lookup counters: how many pre-state reads the probe pushdown kept
	// restricted versus how many forced a full reconstruction. The ratio
	// is the restricted-eval saving a refresh achieved.
	nRestricted atomic.Int64
	nFull       atomic.Int64
}

// NewVirtualState builds a virtual pre-state over the warehouse state.
func NewVirtualState(comp *core.Complement, w algebra.State) *VirtualState {
	return NewVirtualStateCtx(comp, w, nil)
}

// NewVirtualStateCtx is NewVirtualState under an evaluation context: every
// reconstruction checks for cancellation and records its counters.
func NewVirtualStateCtx(comp *core.Complement, w algebra.State, ec *algebra.EvalContext) *VirtualState {
	attrs := make(map[string][]string)
	for name, sc := range comp.Database().Schemas() {
		attrs[name] = sc.AttrNames()
	}
	return &VirtualState{
		inverses: comp.InverseMap(),
		attrs:    attrs,
		w:        w,
		ec:       ec,
		cache:    make(map[string]*relation.Relation),
	}
}

// Relation implements algebra.State: base names resolve through W⁻¹.
// Safe for concurrent use; reconstruction of each base happens once and
// the cached relations are treated as read-only.
func (v *VirtualState) Relation(name string) (*relation.Relation, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if r, ok := v.cache[name]; ok {
		return r, true
	}
	inv, ok := v.inverses[name]
	if !ok {
		return nil, false
	}
	v.nFull.Add(1)
	r, err := algebra.EvalCtx(v.ec, inv, v.w)
	if err != nil {
		return nil, false
	}
	v.cache[name] = r
	return r, true
}

// RelationRestricted implements RestrictedState: it reconstructs only the
// fraction of the base relation matching the probe by pushing the probe
// through the inverse expression (semi-join pushdown). If the full value
// happens to be cached already, it semi-joins that instead.
func (v *VirtualState) RelationRestricted(name string, probe *relation.Relation) (*relation.Relation, error) {
	v.mu.Lock()
	if r, ok := v.cache[name]; ok {
		v.mu.Unlock()
		return relation.SemiJoin(r, probe), nil
	}
	inv, ok := v.inverses[name]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("maintain: no inverse for relation %q", name)
	}
	v.nRestricted.Add(1)
	return algebra.EvalRestricted(v.ec, inv, v.w, probe)
}

// RelationAttrs implements RestrictedState from the source schemata.
func (v *VirtualState) RelationAttrs(name string) ([]string, bool) {
	a, ok := v.attrs[name]
	return a, ok
}

// LookupStats reports how many pre-state reads stayed probe-restricted
// and how many forced a full base-relation reconstruction.
func (v *VirtualState) LookupStats() (restricted, full int64) {
	return v.nRestricted.Load(), v.nFull.Load()
}

// RefreshSpan is the per-target trace of one refresh: how large the
// propagated delta was before and after normalization against the
// pre-state, and how long propagation took. Servers expose spans through
// /stats and feed their durations into refresh histograms.
type RefreshSpan struct {
	// Target is the refreshed warehouse relation (view or complement).
	Target string `json:"target"`
	// DeltaIns / DeltaDel are the propagated delta sizes (tuples to
	// insert / delete, before normalization against the pre-state).
	DeltaIns int `json:"deltaIns"`
	DeltaDel int `json:"deltaDel"`
	// Applied is the number of tuples the exact (normalized) delta
	// actually changed.
	Applied int `json:"applied"`
	// Wall is the propagation time for this target.
	Wall time.Duration `json:"wallNs"`
}

// RefreshStats reports what a refresh did, for benchmarks and logs.
type RefreshStats struct {
	// Changed maps each warehouse relation to the number of tuples its
	// delta touched (insertions + deletions).
	Changed map[string]int
	// UpdateSize is the size of the normalized source update.
	UpdateSize int
	// Wall is the end-to-end refresh time (RefreshContext only).
	Wall time.Duration
	// Eval holds the operator counters of the refresh's evaluations
	// (RefreshContext only; nil from plain Refresh).
	Eval *algebra.EvalStats
	// Spans traces each refreshed relation's propagation (delta sizes and
	// wall time), in application order.
	Spans []RefreshSpan
	// RestrictedLookups / FullReconstructions count how the refresh's
	// pre-state reads were answered: probe-restricted (cost proportional
	// to the delta) versus full reconstruction through W⁻¹.
	RestrictedLookups   int64
	FullReconstructions int64
}

// Total returns the total number of warehouse tuple changes.
func (s RefreshStats) Total() int {
	n := 0
	for _, c := range s.Changed {
		n += c
	}
	return n
}

// DeltaConsumer receives the exact per-relation delta of every refresh,
// after it has been applied. Downstream materializations — the aggregate
// summary tables of Section 5 (package aggregate) — hook in here.
type DeltaConsumer interface {
	// Consume is called once per refreshed warehouse relation with the
	// exact delta and the post-state relation.
	Consume(target string, d Delta, post *relation.Relation) error
}

// Maintainer applies source updates to a warehouse incrementally and
// update-independently: all information comes from the warehouse state and
// the reported update, never from the sources (Theorem 4.1).
type Maintainer struct {
	comp      *core.Complement
	consumers []DeltaConsumer
	parallel  bool
}

// NewMaintainer returns a maintainer for warehouses built from the
// complement.
func NewMaintainer(comp *core.Complement) *Maintainer {
	return &Maintainer{comp: comp}
}

// AddConsumer registers a downstream delta consumer (e.g. an aggregate
// view over one of the maintained relations).
func (m *Maintainer) AddConsumer(c DeltaConsumer) {
	m.consumers = append(m.consumers, c)
}

// SetParallel toggles concurrent delta computation: the per-relation
// deltas of one refresh are independent (they read the shared pre-state
// but write nothing), so wide warehouses can propagate them on separate
// goroutines. Application remains serialized.
func (m *Maintainer) SetParallel(p bool) {
	m.parallel = p
}

// Refresh computes w' = W(u(W⁻¹(w))) incrementally and applies it to the
// warehouse in place. Every view and stored complement gets its delta from
// Propagate, with all pre-state reads answered by the VirtualState. The
// deltas for all relations are computed against the same pre-state before
// any of them is applied.
//
// Deprecated: use RefreshContext (or the facade's context-first
// dwc.Refresh) so cancellation and instrumentation propagate; Refresh
// survives as a thin wrapper for external callers.
func (m *Maintainer) Refresh(w *warehouse.Warehouse, u *catalog.Update) (RefreshStats, error) {
	return m.refresh(context.Background(), nil, w, u)
}

// RefreshContext is Refresh with cancellation and instrumentation: the
// context is checked between propagation steps and at every operator
// boundary inside them (a canceled refresh aborts before any delta is
// applied, leaving the warehouse untouched), and the returned stats carry
// the evaluation counters and wall time.
func (m *Maintainer) RefreshContext(ctx context.Context, w *warehouse.Warehouse, u *catalog.Update) (RefreshStats, error) {
	ec := algebra.NewEvalContext(ctx)
	start := time.Now()
	stats, err := m.refresh(ctx, ec, w, u)
	stats.Wall = time.Since(start)
	es := ec.Stats()
	es.Wall = stats.Wall
	stats.Eval = &es
	return stats, err
}

// cancelOr prefers the evaluation context's cancellation error over err,
// so a refresh aborted mid-reconstruction reports context.Canceled rather
// than the lookup failure the abort surfaced as.
func cancelOr(ec *algebra.EvalContext, err error) error {
	if cerr := ec.Err(); cerr != nil {
		return cerr
	}
	return err
}

// propagateTraced runs one target's Propagate under a "refresh.target"
// span (a no-op without a recording parent in ctx), annotating the
// propagated delta sizes.
func propagateTraced(ctx context.Context, name string, def algebra.Expr, vst *VirtualState, nu *catalog.Update) (Delta, error) {
	_, sp := trace.StartSpan(ctx, "refresh.target")
	defer sp.End()
	sp.SetAttr("target", name)
	d, err := Propagate(def, vst, nu)
	if err == nil {
		sp.SetAttrInt("deltaIns", int64(d.Ins.Len()))
		sp.SetAttrInt("deltaDel", int64(d.Del.Len()))
	}
	return d, err
}

func (m *Maintainer) refresh(ctx context.Context, ec *algebra.EvalContext, w *warehouse.Warehouse, u *catalog.Update) (RefreshStats, error) {
	stats := RefreshStats{Changed: make(map[string]int)}
	// Fail before any delta work: a sealed warehouse (read-only replica)
	// would refuse the commit loop below anyway, and checking here keeps
	// the refusal all-or-nothing — no partially staged refresh, and the
	// typed error surfaces before any evaluation cost is paid.
	if w.Sealed() {
		return stats, warehouse.ErrReadOnlyReplica
	}
	vst := NewVirtualStateCtx(m.comp, w, ec)
	nu, err := NormalizeUpdate(u, vst, m.comp)
	if err != nil {
		return stats, cancelOr(ec, err)
	}
	stats.UpdateSize = nu.Size()

	type target struct {
		name string
		def  algebra.Expr
	}
	var targets []target
	for _, v := range m.comp.Views().Views() {
		targets = append(targets, target{v.Name, v.Expr()})
	}
	for _, e := range m.comp.StoredEntries() {
		targets = append(targets, target{e.Name, e.Def})
	}

	type pending struct {
		name string
		d    Delta
		wall time.Duration
	}
	deltas := make([]pending, len(targets))
	if m.parallel && len(targets) > 1 {
		var wg sync.WaitGroup
		errs := make([]error, len(targets))
		for i, tg := range targets {
			wg.Add(1)
			go func(i int, tg target) {
				defer wg.Done()
				start := time.Now()
				d, err := propagateTraced(ctx, tg.name, tg.def, vst, nu)
				if err != nil {
					errs[i] = fmt.Errorf("maintain: %s: %w", tg.name, err)
					return
				}
				deltas[i] = pending{tg.name, d, time.Since(start)}
			}(i, tg)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return stats, cancelOr(ec, err)
			}
		}
	} else {
		for i, tg := range targets {
			if err := ec.Err(); err != nil {
				return stats, err
			}
			start := time.Now()
			d, err := propagateTraced(ctx, tg.name, tg.def, vst, nu)
			if err != nil {
				return stats, cancelOr(ec, fmt.Errorf("maintain: %s: %w", tg.name, err))
			}
			deltas[i] = pending{tg.name, d, time.Since(start)}
		}
	}
	// Apply phase — all deltas or none. Every changed relation is
	// applied to a copy first (copy-on-write apply set); an error or
	// cancellation anywhere before the final commit loop discards the
	// copies and leaves the warehouse bitwise unchanged, so a failed
	// refresh can simply be retried with the same update.
	stats.Spans = make([]RefreshSpan, 0, len(deltas))
	type staged struct {
		name  string
		post  *relation.Relation // copy with the delta applied
		exact Delta
		dirty bool // post differs from the live relation
	}
	commit := make([]staged, 0, len(deltas))
	for _, p := range deltas {
		if err := ec.Err(); err != nil {
			return stats, err
		}
		r, ok := w.Relation(p.name)
		if !ok {
			return stats, fmt.Errorf("maintain: warehouse has no relation %q", p.name)
		}
		exact := p.d.Exact(r)
		post := r
		dirty := exact.Size() > 0
		if dirty {
			post = r.Clone()
			exact.ApplyTo(post)
		}
		// Crash point between delta applications: the fault-injection
		// tests arm it at every position k and assert rollback.
		if err := chaos.Point("refresh.apply"); err != nil {
			return stats, fmt.Errorf("maintain: apply %s: %w", p.name, err)
		}
		commit = append(commit, staged{p.name, post, exact, dirty})
		stats.Changed[p.name] = exact.Size()
		stats.Spans = append(stats.Spans, RefreshSpan{
			Target:   p.name,
			DeltaIns: p.d.Ins.Len(),
			DeltaDel: p.d.Del.Len(),
			Applied:  exact.Size(),
			Wall:     p.wall,
		})
	}
	// Consumers see the post-state copies before anything is installed:
	// a consumer error aborts the refresh with the warehouse untouched.
	// (Consumers with their own materialized state must tolerate a
	// retried delta; package aggregate's tables are rebuilt from the
	// warehouse on recovery, so this holds.)
	for _, c := range commit {
		for _, consumer := range m.consumers {
			if err := consumer.Consume(c.name, c.exact, c.post); err != nil {
				return stats, fmt.Errorf("maintain: consumer for %s: %w", c.name, err)
			}
		}
	}
	for _, c := range commit {
		if c.dirty {
			if err := w.Install(c.name, c.post); err != nil {
				// Only a seal flipped since the check above can fail here;
				// the flip is serialized with refreshes by the caller, so
				// no earlier install of this loop has happened either.
				return stats, err
			}
		}
	}
	stats.RestrictedLookups, stats.FullReconstructions = vst.LookupStats()
	return stats, nil
}

// RefreshByRecompute is the semantic reference implementation of Theorem
// 4.1: reconstruct all base relations through W⁻¹, apply the update, and
// re-materialize every warehouse relation from scratch. It is
// update-independent too (no source access) but pays full recomputation;
// experiment E12 benchmarks the two against each other, and the test suite
// checks they agree tuple-for-tuple.
func (m *Maintainer) RefreshByRecompute(w *warehouse.Warehouse, u *catalog.Update) error {
	bases, err := w.ReconstructBases()
	if err != nil {
		return err
	}
	db := m.comp.Database()
	st := db.NewState()
	for name, r := range bases {
		for t := range r.All() {
			cur, _ := st.Relation(name)
			if _, err := st.Insert(name, alignTuple(r, cur, t)); err != nil {
				return err
			}
		}
	}
	if err := u.Apply(st); err != nil {
		return err
	}
	return w.Initialize(st)
}

// NormalizeUpdate normalizes the update against the virtual pre-state
// (inserts already present are dropped, deletes of absent tuples are
// dropped, insert+delete pairs become no-ops) without ever touching the
// real sources. Star warehouses and other callers with their own refresh
// loops use it before Propagate. Membership of the updated tuples is all
// that matters, so the pre-state is probed restrictedly — the cost is
// proportional to the update, not to the database.
func NormalizeUpdate(u *catalog.Update, vst *VirtualState, comp *core.Complement) (*catalog.Update, error) {
	db := comp.Database()
	out := catalog.NewUpdate()
	for _, name := range u.Touched() {
		sc, ok := db.Schema(name)
		if !ok {
			return nil, fmt.Errorf("maintain: update references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
		}
		schemaAttrs := sc.AttrNames()
		ins, del := u.Inserts(name), u.Deletes(name)
		probe := relation.New(schemaAttrs...)
		if ins != nil {
			probe.InsertAll(ins)
		}
		if del != nil {
			probe.InsertAll(del)
		}
		cur, err := vst.RelationRestricted(name, probe)
		if err != nil {
			return nil, err
		}
		if ins != nil {
			for t := range ins.All() {
				if cur.ContainsAligned(t, ins) {
					continue // already present (covers delete+re-insert too)
				}
				if del != nil && del.ContainsAligned(t, ins) {
					continue // insert+delete of an absent tuple: no-op
				}
				if err := out.Insert(name, db, alignToAttrs(ins, schemaAttrs, t)); err != nil {
					return nil, err
				}
			}
		}
		if del != nil {
			for t := range del.All() {
				if !cur.ContainsAligned(t, del) {
					continue // absent: nothing to delete
				}
				if ins != nil && ins.ContainsAligned(t, del) {
					continue // delete+re-insert of a present tuple: no-op
				}
				if err := out.Delete(name, db, alignToAttrs(del, schemaAttrs, t)); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// alignToAttrs lays out tuple t (in src's column order) according to the
// given attribute-name order.
func alignToAttrs(src *relation.Relation, attrs []string, t relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, len(attrs))
	for i, a := range attrs {
		p, ok := src.Pos(a)
		if !ok {
			panic(fmt.Sprintf("maintain: attribute %q missing while aligning tuple", a))
		}
		out[i] = t[p]
	}
	return out
}
