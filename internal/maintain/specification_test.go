package maintain

import (
	"strings"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

func TestSpecifyFigure1(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	spec, err := Specify(comp)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1.2: inverses for both base relations.
	if len(spec.Inverses) != 2 {
		t.Fatalf("inverses = %d", len(spec.Inverses))
	}
	// Step 3: programs for Sold and both stored complements, under four
	// update classes each (ins/del × Sale/Emp).
	for _, target := range []string{"Sold", "C_Sale", "C_Emp"} {
		progs, ok := spec.Programs[target]
		if !ok {
			t.Fatalf("no programs for %s", target)
		}
		for _, class := range []string{"ins:Sale", "del:Sale", "ins:Emp", "del:Emp"} {
			p, ok := progs[class]
			if !ok {
				t.Errorf("%s lacks class %s", target, class)
				continue
			}
			// Warehouse-only: no base relation names in the expressions.
			for _, e := range []algebra.Expr{p.Ins, p.Del} {
				for b := range algebra.Bases(e) {
					if b == "Sale" || b == "Emp" {
						t.Errorf("%s/%s references base %q: %s", target, class, b, e)
					}
				}
			}
		}
	}
	// The rendered document mentions every step.
	doc := spec.String()
	for _, want := range []string{"Step 1.1", "Step 1.2", "Step 2", "Step 3", "ins:Sale", "Δ+Sale"} {
		if !strings.Contains(doc, want) {
			t.Errorf("specification document missing %q", want)
		}
	}
}

// TestSpecificationProgramsCorrect executes every derived maintenance
// program on concrete data and compares against recomputation.
func TestSpecificationProgramsCorrect(t *testing.T) {
	scenarios := []struct {
		sc   workload.Scenario
		opts core.Options
	}{
		{workload.Figure1(false), core.Proposition22()},
		{workload.Figure1(true), core.Theorem22()},
		{workload.Example23(workload.E23AllKeysAndINDs, true), core.Theorem22()},
	}
	for _, tc := range scenarios {
		t.Run(tc.sc.Name, func(t *testing.T) {
			comp := core.MustCompute(tc.sc.DB, tc.sc.Views, tc.opts)
			spec, err := Specify(comp)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewGen(tc.sc.DB, 19)
			targets := make(map[string]algebra.Expr)
			for _, v := range comp.Views().Views() {
				targets[v.Name] = v.Expr()
			}
			for _, e := range comp.StoredEntries() {
				targets[e.Name] = e.Def
			}
			for round := 0; round < 8; round++ {
				st := gen.State(8)
				ws, err := comp.MaterializeWarehouse(st)
				if err != nil {
					t.Fatal(err)
				}
				for _, base := range tc.sc.DB.Names() {
					for _, insOnly := range []bool{true, false} {
						var u = gen.Update(st, 0, 3)
						class := "del:" + base
						if insOnly {
							u = gen.Update(st, 3, 0)
							class = "ins:" + base
						}
						// Restrict the update to the single relation the
						// class covers.
						u = restrictUpdateTo(t, u, base, tc.sc)
						if u.IsEmpty() {
							continue
						}
						post := st.Clone()
						if err := u.Apply(post); err != nil {
							t.Fatal(err)
						}
						for target, def := range targets {
							p := spec.Programs[target][class]
							d, err := EvalMaintenance(p, algebra.MapState(ws), u, tc.sc.DB)
							if err != nil {
								t.Fatalf("%s/%s: %v", target, class, err)
							}
							got := ws[target].Clone()
							d.ApplyTo(got)
							want, err := algebra.Eval(def, post)
							if err != nil {
								t.Fatal(err)
							}
							if !got.Equal(want) {
								t.Errorf("round %d %s under %s: program wrong:\nIns %s\nDel %s\ngot  %v\nwant %v",
									round, target, class, p.Ins, p.Del, got, want)
							}
						}
					}
				}
			}
		})
	}
}

// restrictUpdateTo keeps only the changes touching the given relation.
func restrictUpdateTo(t *testing.T, u *catalog.Update, base string, sc workload.Scenario) *catalog.Update {
	t.Helper()
	out := catalog.NewUpdate()
	if ins := u.Inserts(base); ins != nil {
		ins.Each(func(tu relation.Tuple) {
			if err := out.Insert(base, sc.DB, alignTuple(ins, ins, tu)); err != nil {
				t.Fatal(err)
			}
		})
	}
	if del := u.Deletes(base); del != nil {
		del.Each(func(tu relation.Tuple) {
			if err := out.Delete(base, sc.DB, alignTuple(del, del, tu)); err != nil {
				t.Fatal(err)
			}
		})
	}
	return out
}

func TestSpecificationTranslateQuery(t *testing.T) {
	sc := workload.Figure1(true)
	comp := core.MustCompute(sc.DB, sc.Views, core.Theorem22())
	spec, err := Specify(comp)
	if err != nil {
		t.Fatal(err)
	}
	q := algebra.NewProject(algebra.NewBase("Sale"), "clerk")
	tq, err := spec.TranslateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for b := range algebra.Bases(tq) {
		if b == "Sale" || b == "Emp" {
			t.Errorf("translation references base %q: %s", b, tq)
		}
	}
	if _, err := spec.TranslateQuery(algebra.NewBase("Nope")); err == nil {
		t.Error("invalid query accepted")
	}
}
