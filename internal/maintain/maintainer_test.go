package maintain

import (
	"math/rand"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

// buildWarehouse materializes the scenario's warehouse from state st.
func buildWarehouse(t *testing.T, sc workload.Scenario, opts core.Options, st *catalog.State) (*warehouse.Warehouse, *core.Complement) {
	t.Helper()
	comp, err := core.Compute(sc.DB, sc.Views, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := warehouse.New(comp)
	if err := w.Initialize(st); err != nil {
		t.Fatal(err)
	}
	return w, comp
}

// assertTheorem41 checks the correctness criterion w' = W(d') for a
// refresh: the incrementally refreshed warehouse must equal the warehouse
// materialized from the updated source state.
func assertTheorem41(t *testing.T, w *warehouse.Warehouse, comp *core.Complement, st *catalog.State, u *catalog.Update) {
	t.Helper()
	post := st.Clone()
	if err := u.Apply(post); err != nil {
		t.Fatal(err)
	}
	want, err := comp.MaterializeWarehouse(post)
	if err != nil {
		t.Fatal(err)
	}
	for name, wantRel := range want {
		got, ok := w.Relation(name)
		if !ok {
			t.Fatalf("warehouse lost relation %q", name)
		}
		if !got.Equal(wantRel) {
			t.Errorf("w'(%s) ≠ W(d')(%s):\ngot  %v\nwant %v", name, name, got, wantRel)
		}
	}
}

func TestRefreshFigure1Insertion(t *testing.T) {
	// The paper's scenario: insert ⟨Computer, Paula⟩ into Sale; the
	// integrator must join it with C1 (Paula's Emp tuple) without asking
	// the sources.
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	m := NewMaintainer(comp)

	u := catalog.NewUpdate().MustInsert("Sale", sc.DB,
		relation.String_("Computer"), relation.String_("Paula"))
	stats, err := m.Refresh(w, u)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UpdateSize != 1 {
		t.Errorf("UpdateSize = %d", stats.UpdateSize)
	}
	sold, _ := w.Relation("Sold")
	if sold.Len() != 4 || !sold.Contains(relation.Tuple{relation.String_("Computer"), relation.String_("Paula"), relation.Int(32)}) {
		t.Errorf("Sold after refresh = %v", sold)
	}
	// Paula moved out of C_Emp: her Emp tuple is now visible in Sold.
	cEmp, _ := w.Relation("C_Emp")
	if !cEmp.IsEmpty() {
		t.Errorf("C_Emp after refresh = %v", cEmp)
	}
	// Computer/Paula is in Sold, so C_Sale stays empty.
	cSale, _ := w.Relation("C_Sale")
	if !cSale.IsEmpty() {
		t.Errorf("C_Sale after refresh = %v", cSale)
	}
	assertTheorem41(t, w, comp, st, u)
}

func TestRefreshDeletion(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	m := NewMaintainer(comp)

	// Delete Mary from Emp: her two Sold tuples vanish, and her sales
	// surface in C_Sale (they lost their join partner).
	u := catalog.NewUpdate().MustDelete("Emp", sc.DB, relation.String_("Mary"), relation.Int(23))
	if _, err := m.Refresh(w, u); err != nil {
		t.Fatal(err)
	}
	sold, _ := w.Relation("Sold")
	if sold.Len() != 1 {
		t.Errorf("Sold = %v", sold)
	}
	cSale, _ := w.Relation("C_Sale")
	if cSale.Len() != 2 {
		t.Errorf("C_Sale = %v, want Mary's two orphaned sales", cSale)
	}
	assertTheorem41(t, w, comp, st, u)
}

func TestRefreshMatchesRecompute(t *testing.T) {
	// The incremental route and the reconstruct-recompute route must agree
	// exactly, across scenarios and random updates.
	scenarios := []struct {
		sc   workload.Scenario
		opts core.Options
	}{
		{workload.Figure1(false), core.Proposition22()},
		{workload.Figure1(true), core.Theorem22()},
		{workload.Example21(true), core.Proposition22()},
		{workload.Example23(workload.E23AllKeysAndINDs, true), core.Theorem22()},
		{workload.Example23(workload.E23AllKeysAndINDs, false), core.Theorem22()},
	}
	for _, tc := range scenarios {
		t.Run(tc.sc.Name, func(t *testing.T) {
			gen := workload.NewGen(tc.sc.DB, 17)
			rng := rand.New(rand.NewSource(99))
			for round := 0; round < 10; round++ {
				st := gen.State(6 + rng.Intn(8))
				u := gen.Update(st, 1+rng.Intn(4), 1+rng.Intn(4))

				wInc, comp := buildWarehouse(t, tc.sc, tc.opts, st)
				m := NewMaintainer(comp)
				if _, err := m.Refresh(wInc, u); err != nil {
					t.Fatal(err)
				}

				wRec, comp2 := buildWarehouse(t, tc.sc, tc.opts, st)
				if err := NewMaintainer(comp2).RefreshByRecompute(wRec, u); err != nil {
					t.Fatal(err)
				}

				for _, name := range wRec.Names() {
					a, _ := wInc.Relation(name)
					b, _ := wRec.Relation(name)
					if !a.Equal(b) {
						t.Fatalf("round %d: incremental and recompute disagree on %s:\nincremental %v\nrecompute  %v\nupdate:\n%s",
							round, name, a, b, u)
					}
				}
				assertTheorem41(t, wInc, comp, st, u)
			}
		})
	}
}

func TestRefreshSequence(t *testing.T) {
	// A long sequence of refreshes must track the source exactly — no
	// drift (the warehouse never resynchronizes from the sources).
	sc := workload.Figure1(true)
	gen := workload.NewGen(sc.DB, 41)
	st := gen.State(10)
	w, comp := buildWarehouse(t, sc, core.Theorem22(), st)
	m := NewMaintainer(comp)

	cur := st.Clone()
	for round := 0; round < 30; round++ {
		u := gen.Update(cur, 3, 2)
		if _, err := m.Refresh(w, u); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := u.Apply(cur); err != nil {
			t.Fatal(err)
		}
	}
	want, err := comp.MaterializeWarehouse(cur)
	if err != nil {
		t.Fatal(err)
	}
	for name, wantRel := range want {
		got, _ := w.Relation(name)
		if !got.Equal(wantRel) {
			t.Errorf("drift after 30 rounds on %s", name)
		}
	}
	// And the sources are still reconstructible.
	bases, err := w.ReconstructBases()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sc.DB.Names() {
		orig, _ := cur.Relation(name)
		if !bases[name].Equal(orig) {
			t.Errorf("reconstruction drift on %s", name)
		}
	}
}

func TestRefreshNeverTouchesSources(t *testing.T) {
	// The virtual state must answer everything: Refresh works with the
	// source state discarded entirely.
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	post := st.Clone()
	u := catalog.NewUpdate().
		MustInsert("Sale", sc.DB, relation.String_("Computer"), relation.String_("Paula")).
		MustDelete("Emp", sc.DB, relation.String_("John"), relation.Int(25))
	if err := u.Apply(post); err != nil {
		t.Fatal(err)
	}
	st = nil // the sources are gone
	m := NewMaintainer(comp)
	if _, err := m.Refresh(w, u); err != nil {
		t.Fatal(err)
	}
	want, err := comp.MaterializeWarehouse(post)
	if err != nil {
		t.Fatal(err)
	}
	for name, wantRel := range want {
		got, _ := w.Relation(name)
		if !got.Equal(wantRel) {
			t.Errorf("sourceless refresh wrong on %s", name)
		}
	}
}

func TestVirtualState(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	_, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	ws, err := comp.MaterializeWarehouse(st)
	if err != nil {
		t.Fatal(err)
	}
	vst := NewVirtualState(comp, ws)
	for _, name := range []string{"Sale", "Emp"} {
		got, ok := vst.Relation(name)
		if !ok {
			t.Fatalf("virtual state missing %s", name)
		}
		want, _ := st.Relation(name)
		if !got.Equal(want) {
			t.Errorf("virtual %s = %v, want %v", name, got, want)
		}
		// Cached second read returns the same object.
		again, _ := vst.Relation(name)
		if again != got {
			t.Error("cache miss on repeat read")
		}
	}
	if _, ok := vst.Relation("Nope"); ok {
		t.Error("virtual state resolved unknown name")
	}
}

func TestRefreshStats(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB,
		relation.String_("Computer"), relation.String_("Paula"))
	stats, err := NewMaintainer(comp).Refresh(w, u)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() == 0 {
		t.Error("stats recorded no changes")
	}
	if stats.Changed["Sold"] != 1 {
		t.Errorf("Sold delta size = %d", stats.Changed["Sold"])
	}
}

func TestRefreshNoOpUpdate(t *testing.T) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := buildWarehouse(t, sc, core.Proposition22(), st)
	// Inserting an existing tuple and deleting an absent one is a no-op.
	u := catalog.NewUpdate().
		MustInsert("Sale", sc.DB, relation.String_("PC"), relation.String_("John")).
		MustDelete("Emp", sc.DB, relation.String_("Ghost"), relation.Int(1))
	stats, err := NewMaintainer(comp).Refresh(w, u)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UpdateSize != 0 || stats.Total() != 0 {
		t.Errorf("no-op update produced changes: %+v", stats)
	}
	assertTheorem41(t, w, comp, st, catalog.NewUpdate())
}

func TestSigmaViewMaintenance(t *testing.T) {
	// End of Section 4: W = σ_{age>30}(Emp) is update-independent without
	// any complement.
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	vs := mustSigmaViews(t, db)
	m, err := NewSigmaMaintainer(db, vs)
	if err != nil {
		t.Fatal(err)
	}
	st := db.NewState().
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23)).
		MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
	w, err := m.Materialize(st)
	if err != nil {
		t.Fatal(err)
	}
	if w["Old"].Len() != 1 {
		t.Fatalf("Old = %v", w["Old"])
	}
	u := catalog.NewUpdate().
		MustInsert("Emp", db, relation.String_("Zoe"), relation.Int(45)).
		MustDelete("Emp", db, relation.String_("Paula"), relation.Int(32))
	if err := m.Refresh(w, u); err != nil {
		t.Fatal(err)
	}
	post := st.Clone()
	if err := u.Apply(post); err != nil {
		t.Fatal(err)
	}
	want, err := m.Materialize(post)
	if err != nil {
		t.Fatal(err)
	}
	if !w["Old"].Equal(want["Old"]) {
		t.Errorf("σ-view refresh wrong: %v want %v", w["Old"], want["Old"])
	}
}

func TestSigmaViewNotQueryIndependent(t *testing.T) {
	// The same σ-view warehouse cannot answer Q = Emp: two states that
	// agree on σ_{age>30}(Emp) but differ on Emp.
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	def := algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30)))
	a := db.NewState().MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
	b := a.Clone().MustInsert("Emp", relation.String_("Mary"), relation.Int(23))
	_, found, err := warehouse.FindAnswerabilityWitness(
		algebra.NewBase("Emp"),
		map[string]algebra.Expr{"Old": def},
		workload.States(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("σ-view warehouse appeared query-independent")
	}
}

func TestSigmaMaintainerValidation(t *testing.T) {
	sc := workload.Figure1(false)
	if _, err := NewSigmaMaintainer(sc.DB, sc.Views); err == nil {
		t.Error("join view accepted as σ-view")
	}
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int"))
	projected := mustViewSet(t, db, "P", []string{"clerk"}, nil, "Emp")
	if _, err := NewSigmaMaintainer(db, projected); err == nil {
		t.Error("projected view accepted as σ-view")
	}
}

// TestParallelRefreshMatchesSerial runs the same refreshes with and
// without parallel delta computation; results must be identical (run with
// -race to also exercise the concurrency claims).
func TestParallelRefreshMatchesSerial(t *testing.T) {
	sc := workload.Example23(workload.E23AllKeysAndINDs, true)
	gen := workload.NewGen(sc.DB, 61)
	for round := 0; round < 12; round++ {
		st := gen.State(8)
		u := gen.Update(st, 3, 2)

		wSerial, compSerial := buildWarehouse(t, sc, core.Theorem22(), st)
		mSerial := NewMaintainer(compSerial)
		if _, err := mSerial.Refresh(wSerial, u); err != nil {
			t.Fatal(err)
		}

		wPar, compPar := buildWarehouse(t, sc, core.Theorem22(), st)
		mPar := NewMaintainer(compPar)
		mPar.SetParallel(true)
		if _, err := mPar.Refresh(wPar, u); err != nil {
			t.Fatal(err)
		}

		for _, name := range wSerial.Names() {
			a, _ := wSerial.Relation(name)
			b, _ := wPar.Relation(name)
			if !a.Equal(b) {
				t.Fatalf("round %d: parallel and serial disagree on %s", round, name)
			}
		}
	}
}
