package maintain

import (
	"strings"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
	"dwcomplement/internal/workload"
)

func mustSigmaViews(t *testing.T, db *catalog.Database) *view.Set {
	t.Helper()
	return view.MustNewSet(db, view.NewPSJ("Old", []string{"clerk", "age"},
		algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30)), "Emp"))
}

func mustViewSet(t *testing.T, db *catalog.Database, name string, proj []string, cond algebra.Cond, bases ...string) *view.Set {
	t.Helper()
	return view.MustNewSet(db, view.NewPSJ(name, proj, cond, bases...))
}

// TestExample41Symbolic reproduces Example 4.1: the maintenance
// expressions for an insertion set s into Sale, first over the sources,
// then translated to warehouse-only form.
func TestExample41Symbolic(t *testing.T) {
	sc := workload.Figure1(false)
	sold := sc.Views.Views()[0]
	shape := InsertionsInto("Sale")

	m, err := Derive("Sold", sold.Expr(), shape, sc.DB)
	if err != nil {
		t.Fatal(err)
	}
	// Over the sources: Sold gains s ⋈ Emp and loses nothing.
	if _, isEmpty := m.Del.(*algebra.Empty); !isEmpty {
		t.Errorf("Del = %s, want empty", m.Del)
	}
	bases := algebra.Bases(m.Ins)
	if !bases.Has(InsName("Sale")) || !bases.Has("Emp") {
		t.Errorf("Ins = %s, want a join of Δ+Sale with Emp", m.Ins)
	}
	if bases.Has("Sale") {
		t.Errorf("Ins = %s: insertion delta must not scan Sale", m.Ins)
	}

	// Warehouse-only form: Emp replaced by π{clerk,age}(Sold) ∪ C_Emp —
	// the paper's s ⋈ (π_clerk,age(Sold) ∪ C1).
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	wm := TranslateToWarehouse(m, comp)
	wBases := algebra.Bases(wm.Ins)
	for b := range wBases {
		if b != "Sold" && b != "C_Emp" && b != InsName("Sale") {
			t.Errorf("warehouse maintenance references %q: %s", b, wm.Ins)
		}
	}
	if !wBases.Has("Sold") || !wBases.Has("C_Emp") {
		t.Errorf("warehouse maintenance = %s, want π(Sold) ∪ C_Emp inside", wm.Ins)
	}
	if got := wm.String(); !strings.Contains(got, "Sold' =") {
		t.Errorf("String = %q", got)
	}
}

// TestSymbolicMatchesRuntime cross-checks the symbolic derivation against
// the runtime propagation on concrete data, for both update shapes, on the
// view and on a complement definition.
func TestSymbolicMatchesRuntime(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	cEmpDef := mustEntry(t, comp, "Emp").Def
	soldDef := sc.Views.Views()[0].Expr()

	gen := workload.NewGen(sc.DB, 55)
	for round := 0; round < 15; round++ {
		st := gen.State(8)
		insOnly := gen.Update(st, 4, 0)
		delOnly := gen.Update(st, 0, 4)

		cases := []struct {
			name  string
			def   algebra.Expr
			u     *catalog.Update
			shape Shape
		}{
			{"Sold/ins", soldDef, insOnly, InsertionsInto("Sale", "Emp")},
			{"Sold/del", soldDef, delOnly, DeletionsFrom("Sale", "Emp")},
			{"C_Emp/ins", cEmpDef, insOnly, InsertionsInto("Sale", "Emp")},
			{"C_Emp/del", cEmpDef, delOnly, DeletionsFrom("Sale", "Emp")},
		}
		for _, tc := range cases {
			sym, err := Derive(tc.name, tc.def, tc.shape, sc.DB)
			if err != nil {
				t.Fatal(err)
			}
			symDelta, err := EvalMaintenance(sym, st, tc.u, sc.DB)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			old, err := algebra.Eval(tc.def, st)
			if err != nil {
				t.Fatal(err)
			}
			gotNew := old.Clone()
			symDelta.ApplyTo(gotNew)

			post := st.Clone()
			if err := tc.u.Apply(post); err != nil {
				t.Fatal(err)
			}
			want, err := algebra.Eval(tc.def, post)
			if err != nil {
				t.Fatal(err)
			}
			if !gotNew.Equal(want) {
				t.Errorf("round %d %s: symbolic maintenance wrong:\nIns: %s\nDel: %s\ngot  %v\nwant %v",
					round, tc.name, sym.Ins, sym.Del, gotNew, want)
			}
		}
	}
}

// TestSymbolicWarehouseOnlyEvaluation evaluates the warehouse-translated
// maintenance program against the warehouse state (plus deltas) and checks
// it reproduces W(d') — a full end-to-end of Example 4.1's pipeline.
func TestSymbolicWarehouseOnlyEvaluation(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	st := workload.Figure1State(sc.DB)
	ws, err := comp.MaterializeWarehouse(st)
	if err != nil {
		t.Fatal(err)
	}
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB,
		relation.String_("Computer"), relation.String_("Paula"))
	shape := InsertionsInto("Sale")

	post := st.Clone()
	if err := u.Apply(post); err != nil {
		t.Fatal(err)
	}
	wantWs, err := comp.MaterializeWarehouse(post)
	if err != nil {
		t.Fatal(err)
	}

	targets := map[string]algebra.Expr{"Sold": sc.Views.Views()[0].Expr()}
	for _, e := range comp.StoredEntries() {
		targets[e.Name] = e.Def
	}
	for name, def := range targets {
		sym, err := Derive(name, def, shape, sc.DB)
		if err != nil {
			t.Fatal(err)
		}
		wsym := TranslateToWarehouse(sym, comp)
		// Evaluate against the warehouse state only.
		d, err := EvalMaintenance(wsym, algebra.MapState(ws), u, sc.DB)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ws[name].Clone()
		d.ApplyTo(got)
		if !got.Equal(wantWs[name]) {
			t.Errorf("%s: warehouse-only symbolic maintenance wrong:\nIns: %s\nDel: %s\ngot  %v\nwant %v",
				name, wsym.Ins, wsym.Del, got, wantWs[name])
		}
	}
}

func TestDeriveInvalidExpression(t *testing.T) {
	sc := workload.Figure1(false)
	if _, err := Derive("X", algebra.NewBase("Nope"), InsertionsInto("Sale"), sc.DB); err == nil {
		t.Error("invalid expression accepted")
	}
}

func mustEntry(t *testing.T, comp *core.Complement, base string) *core.Entry {
	t.Helper()
	e, ok := comp.Entry(base)
	if !ok {
		t.Fatalf("no entry for %s", base)
	}
	return e
}

// TestSymbolicAllOperators derives maintenance programs for expressions
// covering every algebra node — union, difference, rename, empty — and
// cross-checks each against recomputation on random data.
func TestSymbolicAllOperators(t *testing.T) {
	sc := workload.Figure1(false)
	exprs := []algebra.Expr{
		algebra.NewUnion(
			algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
			algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
		algebra.NewRename(
			algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(21))),
			map[string]string{"clerk": "person"}),
		algebra.NewUnion(
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk"),
			algebra.NewProject(algebra.NewEmpty("clerk", "x"), "clerk")),
	}
	shapes := []Shape{
		InsertionsInto("Sale", "Emp"),
		DeletionsFrom("Sale", "Emp"),
	}
	gen := workload.NewGen(sc.DB, 88)
	for round := 0; round < 10; round++ {
		st := gen.State(8)
		for si, shape := range shapes {
			var u *catalog.Update
			if si == 0 {
				u = gen.Update(st, 4, 0)
			} else {
				u = gen.Update(st, 0, 4)
			}
			post := st.Clone()
			if err := u.Apply(post); err != nil {
				t.Fatal(err)
			}
			for _, e := range exprs {
				m, err := Derive("T", e, shape, sc.DB)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				d, err := EvalMaintenance(m, st, u, sc.DB)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				old, err := algebra.Eval(e, st)
				if err != nil {
					t.Fatal(err)
				}
				got := old.Clone()
				d.ApplyTo(got)
				want, err := algebra.Eval(e, post)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("round %d shape %d: symbolic maintenance of %s wrong:\nIns %s\nDel %s\ngot  %v\nwant %v",
						round, si, e, m.Ins, m.Del, got, want)
				}
			}
		}
	}
}
