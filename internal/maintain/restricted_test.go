package maintain

import (
	"math/rand"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

// TestRestrictedContract verifies the restricted-value invariant on every
// node type: for any probe, the restricted value agrees with the full
// value exactly on probe-matching tuples (both directions), under both
// valKinds, across random states and updates.
func TestRestrictedContract(t *testing.T) {
	sc := workload.Figure1(false)
	exprs := []algebra.Expr{
		algebra.NewBase("Sale"),
		algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(24))),
		algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk", "age"),
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
		algebra.NewUnion(
			algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
			algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
		algebra.NewDiff(algebra.NewBase("Emp"),
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk", "age")),
		algebra.NewRename(algebra.NewBase("Emp"), map[string]string{"clerk": "person"}),
	}
	gen := workload.NewGen(sc.DB, 3)
	rng := rand.New(rand.NewSource(8))

	for round := 0; round < 25; round++ {
		st := gen.State(8)
		u := gen.Update(st, 2, 2)
		for _, e := range exprs {
			n, err := propagate(e, st, u)
			if err != nil {
				t.Fatal(err)
			}
			full := map[valKind]*relation.Relation{}
			for _, which := range []valKind{oldValue, newValue} {
				// Force fulls on a fresh node so memo shortcuts don't
				// mask the restrictFn paths.
				n2, err := propagate(e, st, u)
				if err != nil {
					t.Fatal(err)
				}
				v, err := n2.value(which)
				if err != nil {
					t.Fatal(err)
				}
				full[which] = v
			}

			// Probes: random subsets of the node's attributes with random
			// values drawn half from the relation, half fresh.
			attrs := n.attrs
			probeAttrs := []string{attrs[rng.Intn(len(attrs))]}
			if len(attrs) > 1 && rng.Intn(2) == 0 {
				probeAttrs = append(probeAttrs, attrs[rng.Intn(len(attrs))])
				if probeAttrs[0] == probeAttrs[1] {
					probeAttrs = probeAttrs[:1]
				}
			}
			probe := relation.New(probeAttrs...)
			fullNew := full[newValue]
			for _, src := range []*relation.Relation{fullNew, full[oldValue]} {
				for _, tu := range src.SortedTuples() {
					if rng.Intn(3) == 0 {
						pt := make(relation.Tuple, len(probeAttrs))
						for i, a := range probeAttrs {
							p, _ := src.Pos(a)
							pt[i] = tu[p]
						}
						probe.Insert(pt)
					}
				}
			}
			// A guaranteed-miss probe value.
			miss := make(relation.Tuple, len(probeAttrs))
			for i := range miss {
				miss[i] = relation.Int(99999)
			}
			probe.Insert(miss)

			for _, which := range []valKind{oldValue, newValue} {
				nr, err := propagate(e, st, u) // fresh node again
				if err != nil {
					t.Fatal(err)
				}
				restricted, err := nr.restricted(which, probe)
				if err != nil {
					t.Fatal(err)
				}
				// Matching tuples must agree exactly.
				wantMatching := relation.SemiJoin(full[which], probe)
				gotMatching := relation.SemiJoin(restricted, probe)
				if !gotMatching.Equal(wantMatching) {
					t.Fatalf("restricted(%v) of %s disagrees on matching tuples:\nprobe %v\ngot  %v\nwant %v\nfull %v",
						which, e, probe, gotMatching, wantMatching, full[which])
				}
			}
		}
	}
}

// TestRestrictedAvoidsFullJoin is the performance contract behind E12: a
// single-tuple insertion into Sale must not force the full Sold join.
// The test measures work indirectly — the delta must be computable even
// when joining the full relations would be prohibitive — by checking the
// join node's memoized values stay unforced.
func TestRestrictedAvoidsFullJoin(t *testing.T) {
	sc := workload.Figure1(false)
	gen := workload.NewGen(sc.DB, 5)
	gen.Domain = 1000
	st := gen.State(300)

	u := gen.Update(st, 1, 0)
	if u.IsEmpty() {
		t.Skip("generator produced empty update")
	}
	join := algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp"))
	n, err := propagate(join, st, u)
	if err != nil {
		t.Fatal(err)
	}
	if !n.d.Del.IsEmpty() {
		t.Errorf("insert-only update produced join deletions: %v", n.d.Del)
	}
	// The join node's full values must not have been materialized.
	if n.oldV != nil || n.newV != nil {
		t.Error("single-tuple insertion forced the full join")
	}
}
