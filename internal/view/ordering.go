package view

import (
	"fmt"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

// This file implements the information ordering of Definition 2.1:
// U ≤ V iff U(d) ⊆ V(d) for every state d, and U < V iff additionally
// U(d) ⊊ V(d) for some state d. Semantic containment of relational
// expressions is undecidable in general, so — exactly like the paper's
// examples, which argue over particular states — the ordering is checked
// empirically over a corpus of sample states: ≤ is verified on every
// sample, < additionally requires a witness. A reported ≤ is therefore
// "not refuted by the corpus", while a reported < carries a concrete
// witness state.

// ExprLeq reports whether u(d) ⊆ v(d) holds on every sample state. The
// expressions must have equal attribute sets on evaluation; mismatched
// schemas yield an error.
func ExprLeq(u, v algebra.Expr, states []algebra.State) (bool, error) {
	for _, st := range states {
		ur, err := algebra.EvalCtx(nil, u, st)
		if err != nil {
			return false, err
		}
		vr, err := algebra.EvalCtx(nil, v, st)
		if err != nil {
			return false, err
		}
		if !ur.AttrSet().Equal(vr.AttrSet()) {
			return false, fmt.Errorf("view: ordering requires equal attribute sets, got %v and %v",
				ur.AttrSet(), vr.AttrSet())
		}
		if !ur.SubsetOf(vr) {
			return false, nil
		}
	}
	return true, nil
}

// ExprLess reports u < v over the corpus: containment on every sample and
// strictness on at least one. The second return value is the index of the
// witness state (-1 when not strictly smaller).
func ExprLess(u, v algebra.Expr, states []algebra.State) (bool, int, error) {
	leq, err := ExprLeq(u, v, states)
	if err != nil || !leq {
		return false, -1, err
	}
	for i, st := range states {
		ur, err := algebra.EvalCtx(nil, u, st)
		if err != nil {
			return false, -1, err
		}
		vr, err := algebra.EvalCtx(nil, v, st)
		if err != nil {
			return false, -1, err
		}
		if ur.Len() < vr.Len() {
			return true, i, nil
		}
	}
	return false, -1, nil
}

// SetLeq reports whether the view set us ≤ vs under Definition 2.1's
// extension to sets: both sets must have the same cardinality and there
// must exist an ordering (a matching) of the views with pairwise ≤. The
// matching is found by backtracking, which is fine at warehouse sizes.
func SetLeq(us, vs []algebra.Expr, states []algebra.State) (bool, error) {
	if len(us) != len(vs) {
		return false, fmt.Errorf("view: set ordering requires equal cardinality, got %d and %d", len(us), len(vs))
	}
	// Precompute the pairwise ≤ relation (schema mismatches mean "not ≤",
	// not an error: the matching just avoids those pairs).
	n := len(us)
	leq := make([][]bool, n)
	for i := range us {
		leq[i] = make([]bool, n)
		for j := range vs {
			ok, err := ExprLeq(us[i], vs[j], states)
			if err != nil {
				ok = false
			}
			leq[i][j] = ok
		}
	}
	used := make([]bool, n)
	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return true
		}
		for j := 0; j < n; j++ {
			if !used[j] && leq[i][j] {
				used[j] = true
				if match(i + 1) {
					return true
				}
				used[j] = false
			}
		}
		return false
	}
	return match(0), nil
}

// SetLess reports us < vs: us ≤ vs and not vs ≤ us over the corpus.
func SetLess(us, vs []algebra.Expr, states []algebra.State) (bool, error) {
	le, err := SetLeq(us, vs, states)
	if err != nil || !le {
		return false, err
	}
	ge, err := SetLeq(vs, us, states)
	if err != nil {
		return false, err
	}
	return !ge, nil
}

// StatesFromMaps adapts plain relation maps to the algebra.State slice the
// ordering functions take.
func StatesFromMaps(maps ...map[string]*relation.Relation) []algebra.State {
	out := make([]algebra.State, len(maps))
	for i, m := range maps {
		out[i] = algebra.MapState(m)
	}
	return out
}
