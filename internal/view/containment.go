package view

import (
	"dwcomplement/internal/algebra"
)

// SyntacticLeq reports a *sound* sufficient condition for U ≤ V under
// Definition 2.1 — true means the containment provably holds on every
// database state; false means "not established by this check" (the
// empirical ExprLeq over a state corpus remains available for the rest).
//
// For natural-join PSJ views the following suffices:
//
//  1. both views project the same attribute set Z (Definition 2.1
//     compares only schema-equal views);
//  2. U joins a superset of V's base relations — every joined tuple of U
//     restricts to a consistent joined tuple of V (shared attributes of a
//     single assignment always agree, so dropping join legs can only keep
//     or enlarge the result);
//  3. every conjunct of V's selection occurs among U's conjuncts, so any
//     tuple passing U's selection passes V's.
//
// This is the classical containment-mapping test specialized to
// attribute-named variables (no renaming), where the only candidate
// homomorphism is the identity.
func SyntacticLeq(u, v *PSJ) bool {
	if !u.ProjSet().Equal(v.ProjSet()) {
		return false
	}
	if !v.BaseSet().SubsetOf(u.BaseSet()) {
		return false
	}
	uConj := algebra.Conjuncts(u.Cond)
	for _, vc := range algebra.Conjuncts(v.Cond) {
		found := false
		for _, uc := range uConj {
			if algebra.CondEqual(vc, uc) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SyntacticEquiv reports provable equivalence: containment both ways.
func SyntacticEquiv(u, v *PSJ) bool {
	return SyntacticLeq(u, v) && SyntacticLeq(v, u)
}
