// Package view implements the paper's view layer: PSJ views — relational
// expressions of the form π_Z(σ_c(Ri1 ⋈ … ⋈ Rik)) over the base schemata D
// — together with normalization of general algebra expressions into PSJ
// form, SJ-view detection (projection-free PSJ views, Theorem 2.1), view
// sets with the V_R / V_K / VK^ind classifications of Section 2, and the
// information ordering on view sets (Definition 2.1).
package view

import (
	"fmt"
	"sort"
	"strings"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

// PSJ is a named projection–selection–join view π_Proj(σ_Cond(⋈ Bases)).
// Bases are distinct base relation names of D (the natural join of a
// relation with itself equals the relation, so duplicates carry no
// information and are rejected by Validate).
type PSJ struct {
	Name  string
	Proj  []string
	Cond  algebra.Cond
	Bases []string
}

// NewPSJ constructs a PSJ view. A nil cond means the trivial condition.
func NewPSJ(name string, proj []string, cond algebra.Cond, bases ...string) *PSJ {
	if cond == nil {
		cond = algebra.True{}
	}
	return &PSJ{
		Name:  name,
		Proj:  append([]string(nil), proj...),
		Cond:  cond,
		Bases: append([]string(nil), bases...),
	}
}

// ProjSet returns the view's schema Z as an attribute set.
func (v *PSJ) ProjSet() relation.AttrSet { return relation.NewAttrSet(v.Proj...) }

// BaseSet returns the set of base relation names the view joins.
func (v *PSJ) BaseSet() relation.AttrSet { return relation.NewAttrSet(v.Bases...) }

// Involves reports whether the view's definition involves base relation r
// (membership in the paper's V_R).
func (v *PSJ) Involves(r string) bool {
	for _, b := range v.Bases {
		if b == r {
			return true
		}
	}
	return false
}

// Expr returns the view definition as an algebra expression over D,
// omitting trivial selections and identity projections.
func (v *PSJ) Expr() algebra.Expr {
	ins := make([]algebra.Expr, len(v.Bases))
	for i, b := range v.Bases {
		ins[i] = algebra.NewBase(b)
	}
	var e algebra.Expr = algebra.NewJoin(ins...)
	if !algebra.IsTrivial(v.Cond) {
		e = algebra.NewSelect(e, algebra.CloneCond(v.Cond))
	}
	return algebra.NewProject(e, v.Proj...)
}

// JoinAttrs returns the union of the attribute sets of all joined bases.
func (v *PSJ) JoinAttrs(db *catalog.Database) (relation.AttrSet, error) {
	out := relation.NewAttrSet()
	for _, b := range v.Bases {
		sc, ok := db.Schema(b)
		if !ok {
			return nil, fmt.Errorf("view: %s references unknown relation %q: %w", v.Name, b, algebra.ErrUnknownRelation)
		}
		out = out.Union(sc.AttrSet())
	}
	return out, nil
}

// IsSJ reports whether the view is an SJ view over db: a PSJ view whose
// final projection includes all attributes occurring in its joined bases
// (the class for which Proposition 2.2's complement is minimal,
// Theorem 2.1).
func (v *PSJ) IsSJ(db *catalog.Database) (bool, error) {
	all, err := v.JoinAttrs(db)
	if err != nil {
		return false, err
	}
	return v.ProjSet().Equal(all), nil
}

// Validate checks the view against the database: distinct known bases, at
// least one base, projection and condition attributes contained in the
// joined attribute set, and a non-empty projection.
func (v *PSJ) Validate(db *catalog.Database) error {
	if v.Name == "" {
		return fmt.Errorf("view without a name")
	}
	if len(v.Bases) == 0 {
		return fmt.Errorf("view %s joins no relations", v.Name)
	}
	seen := map[string]bool{}
	for _, b := range v.Bases {
		if seen[b] {
			return fmt.Errorf("view %s joins relation %s twice (self-joins carry no information in natural-join PSJ views)", v.Name, b)
		}
		seen[b] = true
	}
	all, err := v.JoinAttrs(db)
	if err != nil {
		return err
	}
	if len(v.Proj) == 0 {
		return fmt.Errorf("view %s projects onto no attributes", v.Name)
	}
	if !v.ProjSet().SubsetOf(all) {
		return fmt.Errorf("view %s projects onto %v outside its joined attributes %v",
			v.Name, v.ProjSet().Minus(all), all)
	}
	if ca := algebra.CondAttrs(v.Cond); !ca.SubsetOf(all) {
		return fmt.Errorf("view %s selection references %v outside its joined attributes %v",
			v.Name, ca.Minus(all), all)
	}
	return nil
}

// Eval materializes the view on a database state.
func (v *PSJ) Eval(st algebra.State) (*relation.Relation, error) {
	return v.EvalCtx(nil, st)
}

// EvalCtx is Eval under an evaluation context, which carries cancellation
// and per-operator counters through the view's expression.
func (v *PSJ) EvalCtx(ec *algebra.EvalContext, st algebra.State) (*relation.Relation, error) {
	return algebra.EvalCtx(ec, v.Expr(), st)
}

// Clone returns a deep copy.
func (v *PSJ) Clone() *PSJ {
	return &PSJ{
		Name:  v.Name,
		Proj:  append([]string(nil), v.Proj...),
		Cond:  algebra.CloneCond(v.Cond),
		Bases: append([]string(nil), v.Bases...),
	}
}

// String renders "Name = <expr>".
func (v *PSJ) String() string {
	return v.Name + " = " + v.Expr().String()
}

// FromExpr normalizes a general algebra expression into PSJ form when one
// exists. The normalization pulls selections below projections (valid
// because validated selections only mention projected attributes) and
// flattens joins; it accepts joins only between projection-free inputs
// with disjoint base sets, since joining already-projected inputs is not
// expressible as a single PSJ view in general. Union, difference, rename
// and Empty have no PSJ form.
func FromExpr(name string, e algebra.Expr, db *catalog.Database) (*PSJ, error) {
	n, err := normalize(e, db)
	if err != nil {
		return nil, fmt.Errorf("view: %q is not a PSJ view: %w", e, err)
	}
	v := NewPSJ(name, n.proj.Sorted(), n.cond, n.bases...)
	if err := v.Validate(db); err != nil {
		return nil, err
	}
	return v, nil
}

// psjNorm is the intermediate normal form: bases, condition, projection,
// plus whether the projection is still the full joined attribute set.
type psjNorm struct {
	bases []string
	cond  algebra.Cond
	proj  relation.AttrSet
	full  bool
}

func normalize(e algebra.Expr, db *catalog.Database) (*psjNorm, error) {
	switch n := e.(type) {
	case *algebra.Base:
		sc, ok := db.Schema(n.Name)
		if !ok {
			return nil, fmt.Errorf("unknown relation %q: %w", n.Name, algebra.ErrUnknownRelation)
		}
		return &psjNorm{bases: []string{n.Name}, cond: algebra.True{}, proj: sc.AttrSet(), full: true}, nil

	case *algebra.Select:
		in, err := normalize(n.Input, db)
		if err != nil {
			return nil, err
		}
		ca := algebra.CondAttrs(n.Cond)
		if !ca.SubsetOf(in.proj) {
			return nil, fmt.Errorf("selection %s references attributes outside %v", n.Cond, in.proj)
		}
		// σ_c(π_Z(E)) = π_Z(σ_c(E)) whenever attrs(c) ⊆ Z, so the
		// condition is pushed into the PSJ selection slot.
		return &psjNorm{
			bases: in.bases,
			cond:  algebra.AndAll(in.cond, algebra.CloneCond(n.Cond)),
			proj:  in.proj,
			full:  in.full,
		}, nil

	case *algebra.Project:
		in, err := normalize(n.Input, db)
		if err != nil {
			return nil, err
		}
		z := relation.NewAttrSet(n.Attrs...)
		if !z.SubsetOf(in.proj) {
			return nil, fmt.Errorf("projection onto %v not contained in %v", z, in.proj)
		}
		return &psjNorm{bases: in.bases, cond: in.cond, proj: z, full: false}, nil

	case *algebra.Join:
		ins := make([]*psjNorm, len(n.Inputs))
		seen := map[string]bool{}
		for i, input := range n.Inputs {
			in, err := normalize(input, db)
			if err != nil {
				return nil, err
			}
			for _, b := range in.bases {
				if seen[b] {
					return nil, fmt.Errorf("join references relation %s twice", b)
				}
				seen[b] = true
			}
			ins[i] = in
		}
		// A projected join input is foldable into one PSJ only when the
		// attributes it dropped are disjoint from every other input: such
		// attributes neither affect the join nor the final projection, so
		// π can be postponed past the join. A dropped-but-shared attribute
		// would change the join semantics, so that shape is rejected.
		for i, in := range ins {
			if in.full {
				continue
			}
			allAttrs, err := joinAttrsOf(in.bases, db)
			if err != nil {
				return nil, err
			}
			dropped := allAttrs.Minus(in.proj)
			for j, other := range ins {
				if i == j {
					continue
				}
				otherAttrs, err := joinAttrsOf(other.bases, db)
				if err != nil {
					return nil, err
				}
				if !dropped.Intersect(otherAttrs).IsEmpty() {
					return nil, fmt.Errorf("join over input projecting away shared attributes %v has no single PSJ form",
						dropped.Intersect(otherAttrs))
				}
			}
		}
		out := &psjNorm{cond: algebra.True{}, proj: relation.NewAttrSet(), full: true}
		for _, in := range ins {
			out.bases = append(out.bases, in.bases...)
			out.cond = algebra.AndAll(out.cond, in.cond)
			out.proj = out.proj.Union(in.proj)
			out.full = out.full && in.full
		}
		return out, nil

	default:
		return nil, fmt.Errorf("%T nodes have no PSJ form", e)
	}
}

// joinAttrsOf returns the joint attribute set of the named base relations.
func joinAttrsOf(bases []string, db *catalog.Database) (relation.AttrSet, error) {
	out := relation.NewAttrSet()
	for _, b := range bases {
		sc, ok := db.Schema(b)
		if !ok {
			return nil, fmt.Errorf("unknown relation %q: %w", b, algebra.ErrUnknownRelation)
		}
		out = out.Union(sc.AttrSet())
	}
	return out, nil
}

// Set is an ordered collection of uniquely named PSJ views — the paper's
// warehouse definition V = {V1..Vk}.
type Set struct {
	views  []*PSJ
	byName map[string]*PSJ
}

// NewSet builds a view set, validating every view against db and the name
// space (view names must be unique and must not clash with base names).
func NewSet(db *catalog.Database, views ...*PSJ) (*Set, error) {
	s := &Set{byName: make(map[string]*PSJ, len(views))}
	for _, v := range views {
		if err := s.add(db, v); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNewSet is NewSet that panics on error, for fixtures and examples.
func MustNewSet(db *catalog.Database, views ...*PSJ) *Set {
	s, err := NewSet(db, views...)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Set) add(db *catalog.Database, v *PSJ) error {
	if err := v.Validate(db); err != nil {
		return fmt.Errorf("view: %w", err)
	}
	if _, dup := s.byName[v.Name]; dup {
		return fmt.Errorf("view: duplicate view name %q", v.Name)
	}
	if _, clash := db.Schema(v.Name); clash {
		return fmt.Errorf("view: view name %q clashes with a base relation", v.Name)
	}
	s.byName[v.Name] = v
	s.views = append(s.views, v)
	return nil
}

// Views returns the views in declaration order. Callers must not modify
// the returned slice.
func (s *Set) Views() []*PSJ { return s.views }

// Len returns the number of views.
func (s *Set) Len() int { return len(s.views) }

// ByName returns the named view and whether it exists.
func (s *Set) ByName(name string) (*PSJ, bool) {
	v, ok := s.byName[name]
	return v, ok
}

// Names returns the view names in declaration order.
func (s *Set) Names() []string {
	out := make([]string, len(s.views))
	for i, v := range s.views {
		out[i] = v.Name
	}
	return out
}

// Over returns V_R: the views whose definition involves base relation r.
func (s *Set) Over(r string) []*PSJ {
	var out []*PSJ
	for _, v := range s.views {
		if v.Involves(r) {
			out = append(out, v)
		}
	}
	return out
}

// WithKey returns V_K for base relation r with key k: the views of V_R
// whose schema Z contains all of k (Section 2's V_{Kj}).
func (s *Set) WithKey(r string, k relation.AttrSet) []*PSJ {
	var out []*PSJ
	for _, v := range s.Over(r) {
		if k.SubsetOf(v.ProjSet()) {
			out = append(out, v)
		}
	}
	return out
}

// Resolver returns the warehouse-level name space: every view name mapped
// to its schema Z. Extra (complement) relations can be layered on top by
// the warehouse package.
func (s *Set) Resolver() algebra.MapResolver {
	m := make(algebra.MapResolver, len(s.views))
	for _, v := range s.views {
		m[v.Name] = v.ProjSet()
	}
	return m
}

// Eval materializes every view on a database state, keyed by view name.
func (s *Set) Eval(st algebra.State) (map[string]*relation.Relation, error) {
	return s.EvalCtx(nil, st)
}

// EvalCtx is Eval under an evaluation context (cancellation + stats);
// ec may be nil.
func (s *Set) EvalCtx(ec *algebra.EvalContext, st algebra.State) (map[string]*relation.Relation, error) {
	out := make(map[string]*relation.Relation, len(s.views))
	for _, v := range s.views {
		r, err := v.EvalCtx(ec, st)
		if err != nil {
			return nil, err
		}
		out[v.Name] = r
	}
	return out, nil
}

// String lists the view definitions one per line, sorted by name.
func (s *Set) String() string {
	lines := make([]string, len(s.views))
	for i, v := range s.views {
		lines[i] = v.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
