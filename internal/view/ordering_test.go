package view

import (
	"math/rand"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

// sampleStates builds a corpus of random states over Figure 1's database,
// always including the empty state and the paper's concrete state.
func sampleStates(t *testing.T, db *catalog.Database, n int) []algebra.State {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	items := []string{"TV set", "VCR", "PC", "Computer", "Radio"}
	clerks := []string{"Mary", "John", "Paula", "Zoe", "Max"}
	states := []algebra.State{db.NewState()}
	paper := db.NewState().
		MustInsert("Sale", relation.String_("TV set"), relation.String_("Mary")).
		MustInsert("Sale", relation.String_("VCR"), relation.String_("Mary")).
		MustInsert("Sale", relation.String_("PC"), relation.String_("John")).
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23)).
		MustInsert("Emp", relation.String_("John"), relation.Int(25)).
		MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
	states = append(states, paper)
	for i := 0; i < n; i++ {
		st := db.NewState()
		for j := 0; j < rng.Intn(8); j++ {
			st.MustInsert("Sale",
				relation.String_(items[rng.Intn(len(items))]),
				relation.String_(clerks[rng.Intn(len(clerks))]))
		}
		used := map[string]bool{}
		for j := 0; j < rng.Intn(6); j++ {
			c := clerks[rng.Intn(len(clerks))]
			if used[c] {
				continue // respect Emp's key
			}
			used[c] = true
			st.MustInsert("Emp", relation.String_(c), relation.Int(int64(20+rng.Intn(30))))
		}
		states = append(states, st)
	}
	return states
}

func TestExprLeq(t *testing.T) {
	db := figure1DB(t)
	states := sampleStates(t, db, 30)

	// π_clerk(Sale ⋈ Emp) ≤ π_clerk(Emp) always (join clerks worked for Emp).
	u := algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk")
	v := algebra.NewProject(algebra.NewBase("Emp"), "clerk")
	le, err := ExprLeq(u, v, states)
	if err != nil || !le {
		t.Errorf("join ≤ projection refuted: %v %v", le, err)
	}
	// The converse is refuted by the paper state (Paula has no sale).
	ge, err := ExprLeq(v, u, states)
	if err != nil || ge {
		t.Errorf("converse not refuted: %v %v", ge, err)
	}
	// Strictness with witness.
	less, witness, err := ExprLess(u, v, states)
	if err != nil || !less || witness < 0 {
		t.Errorf("ExprLess = %v, %d, %v", less, witness, err)
	}
	// An expression is not strictly smaller than itself.
	self, _, err := ExprLess(u, u, states)
	if err != nil || self {
		t.Errorf("u < u reported: %v %v", self, err)
	}
}

func TestExprLeqSchemaMismatch(t *testing.T) {
	db := figure1DB(t)
	states := sampleStates(t, db, 3)
	u := algebra.NewProject(algebra.NewBase("Emp"), "clerk")
	v := algebra.NewBase("Emp")
	if _, err := ExprLeq(u, v, states); err == nil {
		t.Error("schema mismatch not reported")
	}
}

func TestSetLeqMatching(t *testing.T) {
	db := figure1DB(t)
	states := sampleStates(t, db, 30)

	joinClerk := algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "clerk")
	joinItem := algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "item")
	empClerk := algebra.NewProject(algebra.NewBase("Emp"), "clerk")
	saleItem := algebra.NewProject(algebra.NewBase("Sale"), "item")

	// {joinClerk, joinItem} ≤ {saleItem, empClerk}: the matching must pair
	// across positions (clerk↔clerk, item↔item).
	ok, err := SetLeq([]algebra.Expr{joinClerk, joinItem}, []algebra.Expr{saleItem, empClerk}, states)
	if err != nil || !ok {
		t.Errorf("SetLeq with permuted matching failed: %v %v", ok, err)
	}
	// Reverse direction must be refuted.
	ok, err = SetLeq([]algebra.Expr{saleItem, empClerk}, []algebra.Expr{joinClerk, joinItem}, states)
	if err != nil || ok {
		t.Errorf("reverse SetLeq accepted: %v %v", ok, err)
	}
	// Strictly smaller.
	less, err := SetLess([]algebra.Expr{joinClerk, joinItem}, []algebra.Expr{saleItem, empClerk}, states)
	if err != nil || !less {
		t.Errorf("SetLess = %v %v", less, err)
	}
	// A set is never strictly below itself.
	self, err := SetLess([]algebra.Expr{joinClerk}, []algebra.Expr{joinClerk}, states)
	if err != nil || self {
		t.Errorf("set < itself: %v %v", self, err)
	}
	// Cardinality mismatch is an error.
	if _, err := SetLeq([]algebra.Expr{joinClerk}, []algebra.Expr{joinClerk, joinItem}, states); err == nil {
		t.Error("cardinality mismatch accepted")
	}
}

func TestStatesFromMaps(t *testing.T) {
	r := relation.New("x")
	r.InsertValues(relation.Int(1))
	states := StatesFromMaps(map[string]*relation.Relation{"R": r})
	got, err := algebra.Eval(algebra.NewBase("R"), states[0])
	if err != nil || got.Len() != 1 {
		t.Errorf("adapter broken: %v %v", got, err)
	}
}
