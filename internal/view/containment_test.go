package view

import (
	"math/rand"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

func TestSyntacticLeqBasics(t *testing.T) {
	ageCond := algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30))

	joined := NewPSJ("U", []string{"clerk"}, nil, "Sale", "Emp")
	single := NewPSJ("V", []string{"clerk"}, nil, "Emp")
	if !SyntacticLeq(joined, single) {
		t.Error("join ⊑ single-base projection not established")
	}
	if SyntacticLeq(single, joined) {
		t.Error("unsound: single-base below join")
	}

	selective := NewPSJ("U", []string{"clerk", "age"}, ageCond, "Emp")
	plain := NewPSJ("V", []string{"clerk", "age"}, nil, "Emp")
	if !SyntacticLeq(selective, plain) {
		t.Error("σ-view ⊑ plain view not established")
	}
	if SyntacticLeq(plain, selective) {
		t.Error("unsound: plain below σ-view")
	}

	// Schema mismatch: never comparable.
	other := NewPSJ("V", []string{"clerk"}, nil, "Emp")
	if SyntacticLeq(selective, other) || SyntacticLeq(other, selective) {
		t.Error("schema-mismatched views compared")
	}

	// Equivalence.
	a := NewPSJ("A", []string{"clerk", "age"}, ageCond, "Emp")
	b := NewPSJ("B", []string{"age", "clerk"}, algebra.CloneCond(ageCond), "Emp")
	if !SyntacticEquiv(a, b) {
		t.Error("identical views not equivalent")
	}
	if SyntacticEquiv(a, plain) {
		t.Error("unsound equivalence")
	}

	// Conjunct subset: tighter condition is below looser.
	tight := NewPSJ("T", []string{"clerk", "age"},
		algebra.AndAll(ageCond, algebra.AttrEqConst("clerk", relation.String_("Mary"))), "Emp")
	if !SyntacticLeq(tight, selective) {
		t.Error("conjunct superset not below subset")
	}
	if SyntacticLeq(selective, tight) {
		t.Error("unsound conjunct direction")
	}
}

// intStates builds random states over the int-typed test schema (local
// helper; package workload cannot be imported here without a cycle).
func intStates(db *catalog.Database, rng *rand.Rand, n, size int) []algebra.State {
	out := []algebra.State{db.NewState()}
	for i := 0; i < n; i++ {
		st := db.NewState()
		for j := 0; j < size; j++ {
			st.MustInsert("Sale", relation.Int(int64(rng.Intn(16))), relation.Int(int64(rng.Intn(16))))
			st.MustInsert("Emp", relation.Int(int64(rng.Intn(16))), relation.Int(int64(rng.Intn(16))))
		}
		out = append(out, st)
	}
	return out
}

// TestSyntacticLeqSound fuzzes: whenever the syntactic check says ⊑, the
// containment must hold on every random state.
func TestSyntacticLeqSound(t *testing.T) {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:int", "clerk:int")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:int", "age:int"))
	rng := rand.New(rand.NewSource(31))
	conds := []algebra.Cond{
		algebra.True{},
		algebra.AttrCmpConst("clerk", algebra.OpGt, relation.Int(4)),
		algebra.AndAll(
			algebra.AttrCmpConst("clerk", algebra.OpGt, relation.Int(4)),
			algebra.AttrCmpConst("clerk", algebra.OpLt, relation.Int(12))),
	}
	mkView := func() *PSJ {
		bases := []string{"Emp"}
		attrs := []string{"clerk"}
		if rng.Intn(2) == 0 {
			bases = append(bases, "Sale")
		}
		return NewPSJ("X", attrs, algebra.CloneCond(conds[rng.Intn(len(conds))]), bases...)
	}
	states := intStates(db, rng, 15, 8)
	established, refutedPairs := 0, 0
	for i := 0; i < 200; i++ {
		u, v := mkView(), mkView()
		if !SyntacticLeq(u, v) {
			refutedPairs++
			continue
		}
		established++
		le, err := ExprLeq(u.Expr(), v.Expr(), states)
		if err != nil {
			t.Fatal(err)
		}
		if !le {
			t.Fatalf("syntactic ⊑ unsound for\nU: %s\nV: %s", u, v)
		}
	}
	if established == 0 || refutedPairs == 0 {
		t.Fatalf("fuzz did not exercise both outcomes (yes=%d, no=%d)", established, refutedPairs)
	}
}
