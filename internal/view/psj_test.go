package view

import (
	"strings"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/relation"
)

func figure1DB(t *testing.T) *catalog.Database {
	t.Helper()
	return catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:string", "clerk:string")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
}

// rstDB is Example 2.1's schema: R(X,Y), S(Y,Z), T(Z).
func rstDB(t *testing.T) *catalog.Database {
	t.Helper()
	return catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("R", "X", "Y")).
		MustAddSchema(relation.NewSchema("S", "Y", "Z")).
		MustAddSchema(relation.NewSchema("T", "Z"))
}

func soldView() *PSJ {
	return NewPSJ("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp")
}

func TestPSJBasics(t *testing.T) {
	db := figure1DB(t)
	v := soldView()
	if err := v.Validate(db); err != nil {
		t.Fatal(err)
	}
	if !v.Involves("Sale") || !v.Involves("Emp") || v.Involves("Nope") {
		t.Error("Involves wrong")
	}
	if !v.ProjSet().Equal(relation.NewAttrSet("item", "clerk", "age")) {
		t.Error("ProjSet wrong")
	}
	sj, err := v.IsSJ(db)
	if err != nil || !sj {
		t.Errorf("Sold must be an SJ view: %v %v", sj, err)
	}
	if got := v.String(); !strings.Contains(got, "Sold = ") || !strings.Contains(got, "⋈") {
		t.Errorf("String = %q", got)
	}
	c := v.Clone()
	c.Proj[0] = "zzz"
	if v.Proj[0] == "zzz" {
		t.Error("Clone shares storage")
	}
}

func TestPSJNotSJ(t *testing.T) {
	db := figure1DB(t)
	v := NewPSJ("V", []string{"item", "clerk"}, nil, "Sale", "Emp")
	sj, err := v.IsSJ(db)
	if err != nil || sj {
		t.Errorf("projected view must not be SJ: %v %v", sj, err)
	}
}

func TestPSJValidateErrors(t *testing.T) {
	db := figure1DB(t)
	bad := []*PSJ{
		NewPSJ("", []string{"item"}, nil, "Sale"),
		NewPSJ("V", []string{"item"}, nil),
		NewPSJ("V", []string{"item"}, nil, "Sale", "Sale"),
		NewPSJ("V", []string{"item"}, nil, "Nope"),
		NewPSJ("V", []string{}, nil, "Sale"),
		NewPSJ("V", []string{"age"}, nil, "Sale"),
		NewPSJ("V", []string{"item"}, algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(1)), "Sale"),
	}
	for i, v := range bad {
		if err := v.Validate(db); err == nil {
			t.Errorf("case %d: invalid view accepted: %s", i, v)
		}
	}
}

func TestPSJEval(t *testing.T) {
	db := figure1DB(t)
	st := db.NewState().
		MustInsert("Sale", relation.String_("TV"), relation.String_("Mary")).
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23)).
		MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
	got, err := soldView().Eval(st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.AttrSet().Equal(relation.NewAttrSet("item", "clerk", "age")) {
		t.Errorf("Sold = %v", got)
	}
	sel := NewPSJ("Old", []string{"clerk"}, algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30)), "Emp")
	or, err := sel.Eval(st)
	if err != nil {
		t.Fatal(err)
	}
	if or.Len() != 1 || !or.Contains(relation.Tuple{relation.String_("Paula")}) {
		t.Errorf("Old = %v", or)
	}
}

func TestFromExpr(t *testing.T) {
	db := figure1DB(t)
	tests := []struct {
		name  string
		e     algebra.Expr
		bases []string
		proj  relation.AttrSet
		cond  bool // non-trivial condition expected
	}{
		{
			"plain base",
			algebra.NewBase("Sale"),
			[]string{"Sale"}, relation.NewAttrSet("item", "clerk"), false,
		},
		{
			"join",
			algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
			[]string{"Sale", "Emp"}, relation.NewAttrSet("item", "clerk", "age"), false,
		},
		{
			"project select join",
			algebra.NewProject(
				algebra.NewSelect(
					algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
					algebra.AttrCmpConst("age", algebra.OpLt, relation.Int(30))),
				"item", "clerk"),
			[]string{"Sale", "Emp"}, relation.NewAttrSet("item", "clerk"), true,
		},
		{
			"select above project",
			algebra.NewSelect(
				algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
				algebra.AttrEqConst("clerk", relation.String_("Mary"))),
			[]string{"Emp"}, relation.NewAttrSet("clerk"), true,
		},
		{
			// π_clerk(Sale) drops only "item", which Emp does not share, so
			// the projection folds past the join.
			"join over foldable projected input",
			algebra.NewJoin(algebra.NewProject(algebra.NewBase("Sale"), "clerk"), algebra.NewBase("Emp")),
			[]string{"Sale", "Emp"}, relation.NewAttrSet("clerk", "age"), false,
		},
		{
			"select of join of selects",
			algebra.NewJoin(
				algebra.NewSelect(algebra.NewBase("Sale"), algebra.AttrEqConst("item", relation.String_("TV"))),
				algebra.NewSelect(algebra.NewBase("Emp"), algebra.AttrCmpConst("age", algebra.OpGe, relation.Int(18)))),
			[]string{"Sale", "Emp"}, relation.NewAttrSet("item", "clerk", "age"), true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := FromExpr("V", tt.e, db)
			if err != nil {
				t.Fatal(err)
			}
			if !v.BaseSet().Equal(relation.NewAttrSet(tt.bases...)) {
				t.Errorf("bases = %v, want %v", v.BaseSet(), tt.bases)
			}
			if !v.ProjSet().Equal(tt.proj) {
				t.Errorf("proj = %v, want %v", v.ProjSet(), tt.proj)
			}
			if got := !algebra.IsTrivial(v.Cond); got != tt.cond {
				t.Errorf("nontrivial cond = %v, want %v", got, tt.cond)
			}
		})
	}
}

func TestFromExprPreservesSemantics(t *testing.T) {
	db := figure1DB(t)
	st := db.NewState().
		MustInsert("Sale", relation.String_("TV"), relation.String_("Mary")).
		MustInsert("Sale", relation.String_("PC"), relation.String_("John")).
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23)).
		MustInsert("Emp", relation.String_("John"), relation.Int(45))
	exprs := []algebra.Expr{
		algebra.NewProject(
			algebra.NewSelect(
				algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
				algebra.AttrCmpConst("age", algebra.OpLt, relation.Int(30))),
			"item", "clerk"),
		algebra.NewJoin(algebra.NewProject(algebra.NewBase("Sale"), "clerk"), algebra.NewBase("Emp")),
		algebra.NewSelect(
			algebra.NewProject(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), "item", "age"),
			algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30))),
	}
	for _, e := range exprs {
		v, err := FromExpr("V", e, db)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		want := algebra.MustEval(e, st)
		got, err := v.Eval(st)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("normalization of %s changed semantics:\ngot  %v\nwant %v", e, got, want)
		}
	}
}

func TestFromExprRejections(t *testing.T) {
	db := figure1DB(t)
	bad := []algebra.Expr{
		algebra.NewUnion(algebra.NewProject(algebra.NewBase("Sale"), "clerk"), algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewDiff(algebra.NewProject(algebra.NewBase("Sale"), "clerk"), algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewRename(algebra.NewBase("Sale"), map[string]string{"item": "x"}),
		algebra.NewEmpty("a"),
		// Join over an input that projected away a *shared* attribute.
		algebra.NewJoin(algebra.NewProject(algebra.NewBase("Emp"), "age"), algebra.NewBase("Sale")),
		// Self-join.
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Sale")),
		// Unknown base.
		algebra.NewBase("Nope"),
		// Selection on projected-away attribute.
		algebra.NewSelect(algebra.NewProject(algebra.NewBase("Emp"), "clerk"), algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(1))),
		// Projection outside input attrs.
		algebra.NewProject(algebra.NewBase("Sale"), "age"),
	}
	for i, e := range bad {
		if _, err := FromExpr("V", e, db); err == nil {
			t.Errorf("case %d: non-PSJ expression accepted: %s", i, e)
		}
	}
}

func TestSet(t *testing.T) {
	db := rstDB(t)
	v1 := NewPSJ("V1", []string{"X", "Y", "Z"}, nil, "R", "S", "T")
	v2 := NewPSJ("V2", []string{"Y", "Z"}, nil, "S")
	s := MustNewSet(db, v1, v2)
	if s.Len() != 2 {
		t.Error("Len")
	}
	if got := s.Names(); got[0] != "V1" || got[1] != "V2" {
		t.Errorf("Names = %v", got)
	}
	if _, ok := s.ByName("V1"); !ok {
		t.Error("ByName")
	}
	// V_R classifications.
	if over := s.Over("S"); len(over) != 2 {
		t.Errorf("V_S = %v", over)
	}
	if over := s.Over("R"); len(over) != 1 || over[0].Name != "V1" {
		t.Errorf("V_R = %v", over)
	}
	if over := s.Over("Nope"); over != nil {
		t.Errorf("V_Nope = %v", over)
	}
	// WithKey: views containing key {Y} of S.
	wk := s.WithKey("S", relation.NewAttrSet("Y"))
	if len(wk) != 2 {
		t.Errorf("V_K = %v", wk)
	}
	wk2 := s.WithKey("S", relation.NewAttrSet("Y", "Q"))
	if len(wk2) != 0 {
		t.Errorf("V_K with alien key = %v", wk2)
	}
	// Resolver namespace.
	res := s.Resolver()
	if a, ok := res.BaseAttrs("V2"); !ok || !a.Equal(relation.NewAttrSet("Y", "Z")) {
		t.Error("Resolver wrong")
	}
}

func TestSetErrors(t *testing.T) {
	db := figure1DB(t)
	if _, err := NewSet(db, soldView(), soldView()); err == nil {
		t.Error("duplicate view names accepted")
	}
	if _, err := NewSet(db, NewPSJ("Sale", []string{"item", "clerk"}, nil, "Sale")); err == nil {
		t.Error("view name clashing with base accepted")
	}
	if _, err := NewSet(db, NewPSJ("V", []string{"zz"}, nil, "Sale")); err == nil {
		t.Error("invalid view accepted")
	}
}

func TestSetEval(t *testing.T) {
	db := figure1DB(t)
	st := db.NewState().
		MustInsert("Sale", relation.String_("TV"), relation.String_("Mary")).
		MustInsert("Emp", relation.String_("Mary"), relation.Int(23))
	s := MustNewSet(db, soldView())
	mats, err := s.Eval(st)
	if err != nil {
		t.Fatal(err)
	}
	if mats["Sold"].Len() != 1 {
		t.Errorf("Sold = %v", mats["Sold"])
	}
}
