package vet

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwcomplement/internal/core"
	"dwcomplement/internal/parse"
)

var update = flag.Bool("update", false, "rewrite the .golden files under testdata/vet")

// TestGolden pins the exact diagnostic output for every config under
// testdata/vet. Each <name>.dw has a sibling <name>.golden holding the
// rendered diagnostics followed by a final "errors: true|false" line
// (the dwctl vet / dwserve gate verdict). Regenerate with
// `go test ./internal/vet -run Golden -update` after an intentional
// diagnostic change — and re-read the diff: these files are the
// user-visible contract.
func TestGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "vet")
	specs, err := filepath.Glob(filepath.Join(dir, "*.dw"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no specs under %s: %v", dir, err)
	}
	for _, spec := range specs {
		name := strings.TrimSuffix(filepath.Base(spec), ".dw")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(spec)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := parse.SpecTextDiag(string(src), dir)
			if err != nil {
				t.Fatalf("diagnostic parse aborted: %v", err)
			}
			diags := CheckSpec(ds, core.Theorem22())
			var b strings.Builder
			if len(diags) > 0 {
				b.WriteString(Render(diags))
				b.WriteString("\n")
			}
			if HasErrors(diags) {
				b.WriteString("errors: true\n")
			} else {
				b.WriteString("errors: false\n")
			}
			got := b.String()

			golden := filepath.Join(dir, name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics for %s.dw diverged from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenBadMixed asserts the acceptance criterion from the issue
// directly, independent of the golden file: one config containing a
// cyclic IND, a non-covered relation, and a dangling projection
// attribute reports all three, with the cycle path and source lines.
func TestGoldenBadMixed(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "vet")
	src, err := os.ReadFile(filepath.Join(dir, "bad_mixed.dw"))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := parse.SpecTextDiag(string(src), dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckSpec(ds, core.Theorem22())
	if !HasErrors(diags) {
		t.Fatal("bad_mixed.dw produced no errors")
	}
	byCode := make(map[string][]Diagnostic)
	for _, d := range diags {
		byCode[d.Code] = append(byCode[d.Code], d)
	}
	cyc := byCode["ind-cycle"]
	if len(cyc) != 1 {
		t.Fatalf("ind-cycle diagnostics = %v, want exactly one", cyc)
	}
	if got, want := strings.Join(cyc[0].Path, "→"), "A→B→A"; got != want {
		t.Errorf("cycle path = %s, want %s", got, want)
	}
	if cyc[0].Line != 10 {
		t.Errorf("ind-cycle reported at line %d, want 10 (the cycle-closing ind)", cyc[0].Line)
	}
	bad := byCode["view-def"]
	if len(bad) != 1 || bad[0].Subject != "Bad" {
		t.Fatalf("view-def diagnostics = %v, want one about view Bad", bad)
	}
	if bad[0].Line != 13 || !strings.Contains(bad[0].Message, "nosuch") {
		t.Errorf("dangling projection not positioned/explained: %v", bad[0])
	}
	var orphan *Diagnostic
	for i, d := range byCode["cover-copy"] {
		if d.Subject == "Orphan" {
			orphan = &byCode["cover-copy"][i]
		}
	}
	if orphan == nil {
		t.Fatalf("non-covered relation Orphan not reported; got %v", diags)
	}
	if orphan.Severity != Warning {
		t.Errorf("cover-copy severity = %v, want warning", orphan.Severity)
	}
}
