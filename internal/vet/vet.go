// Package vet is Layer 2 of the dwvet subsystem (DESIGN.md §10): static
// verification of a warehouse definition before a single tuple is
// loaded. The paper's guarantees are structural — complement correctness
// (Prop. 2.1), key-cover reconstruction under acyclic INDs (Thm. 2.2),
// query independence (Thm. 3.1) — so they can be decided from the
// schemata, constraints, and view definitions alone. Check reports:
//
//   - PSJ view well-formedness: projections and selection conditions over
//     existing attributes, join attribute type compatibility, and
//     disconnected (cartesian) join graphs;
//   - IND acyclicity, with the offending cycle path in the diagnostic;
//   - per-relation key-cover analysis: which base relations are
//     reconstructible from the views alone and which need a stored
//     complement (and whether that complement degenerates to a full copy);
//   - a query-independence verdict for the resulting warehouse.
package vet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/constraint"
	"dwcomplement/internal/core"
	"dwcomplement/internal/parse"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info reports a property worth knowing (e.g. a relation being
	// reconstructible from views alone).
	Info Severity = iota
	// Warning marks a definition that is sound but likely not what the
	// author wanted (full-copy complements, cartesian joins).
	Warning
	// Error marks a definition the warehouse must refuse to serve.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one finding about a warehouse definition.
type Diagnostic struct {
	Severity Severity
	// Code is a stable machine-readable identifier (e.g. "ind-cycle").
	Code string
	// Subject is the relation or view the finding is about ("" for
	// warehouse-wide findings).
	Subject string
	// Line is the 1-based spec line when the definition came from a .dw
	// file, 0 otherwise.
	Line int
	// Message is the human-readable explanation.
	Message string
	// Path is the IND cycle path for ind-cycle diagnostics (the first
	// relation repeated at the end), nil otherwise.
	Path []string
}

// String renders "line 12: error[ind-cycle] Sale: ..." (the line prefix
// is omitted when unknown).
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "line %d: ", d.Line)
	}
	fmt.Fprintf(&b, "%s[%s]", d.Severity, d.Code)
	if d.Subject != "" {
		fmt.Fprintf(&b, " %s", d.Subject)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	return b.String()
}

// HasErrors reports whether any diagnostic is an Error — the condition
// under which dwserve refuses a config and dwctl vet exits non-zero.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Render formats the diagnostics one per line, errors included, in the
// stable order produced by Check/CheckSpec.
func Render(diags []Diagnostic) string {
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// Check statically verifies a warehouse definition given as a database
// and view set (the programmatic API surface; CheckSpec covers .dw
// files). opts selects the complement construction the analysis assumes,
// typically core.Theorem22().
func Check(db *catalog.Database, views *view.Set, opts core.Options) []Diagnostic {
	var diags []Diagnostic

	// Constraint layer: IND references and acyclicity. A cyclic IND set
	// invalidates the topological processing order of Theorem 2.2, so the
	// cover analysis below is skipped when a cycle exists.
	cyclic := false
	if err := db.Validate(); err != nil {
		var ce *constraint.CycleError
		if errors.As(err, &ce) {
			cyclic = true
			diags = append(diags, Diagnostic{
				Severity: Error,
				Code:     "ind-cycle",
				Subject:  ce.Path[0],
				Message: fmt.Sprintf("inclusion dependencies are cyclic: %s (Theorem 2.2 requires an acyclic IND set)",
					strings.Join(ce.Path, " → ")),
				Path: append([]string(nil), ce.Path...),
			})
		} else {
			diags = append(diags, Diagnostic{
				Severity: Error,
				Code:     "catalog",
				Message:  err.Error(),
			})
		}
	}

	// View layer.
	for _, v := range views.Views() {
		diags = append(diags, checkView(db, v)...)
	}

	// Cover layer: run the complement construction symbolically and read
	// off which relations the views already determine (Theorem 2.2).
	if !cyclic {
		cover, qi := checkCovers(db, views, opts)
		diags = append(diags, cover...)
		// The query-independence verdict only holds for a sound config:
		// with errors present, stating it would be misleading.
		if qi != nil && !HasErrors(diags) {
			diags = append(diags, *qi)
		}
	}

	sortDiags(diags)
	return diags
}

// checkView verifies one PSJ view beyond PSJ.Validate: structural
// validity (for hand-built views that bypassed parsing), join attribute
// type compatibility, and join-graph connectivity.
func checkView(db *catalog.Database, v *view.PSJ) []Diagnostic {
	var diags []Diagnostic
	if err := v.Validate(db); err != nil {
		return []Diagnostic{{
			Severity: Error,
			Code:     "view-def",
			Subject:  v.Name,
			Message:  err.Error(),
		}}
	}

	// Join attribute type compatibility: a shared attribute declared with
	// different types never joins, so the view is empty on every state.
	type attrDecl struct {
		rel  string
		kind relation.Kind
	}
	declared := make(map[string]attrDecl)
	for _, b := range v.Bases {
		sc, _ := db.Schema(b)
		for _, a := range sc.Attrs {
			prev, seen := declared[a.Name]
			if !seen {
				declared[a.Name] = attrDecl{rel: b, kind: a.Type}
				continue
			}
			if prev.kind != relation.KindNull && a.Type != relation.KindNull && prev.kind != a.Type {
				diags = append(diags, Diagnostic{
					Severity: Error,
					Code:     "view-types",
					Subject:  v.Name,
					Message: fmt.Sprintf("join attribute %q has type %s in %s but %s in %s; the join is empty on every state",
						a.Name, prev.kind, prev.rel, a.Type, b),
				})
			}
		}
	}

	// Join-graph connectivity: natural joins between relations sharing no
	// attributes degenerate to cartesian products.
	if len(v.Bases) > 1 {
		if comp := joinComponents(db, v.Bases); comp > 1 {
			diags = append(diags, Diagnostic{
				Severity: Warning,
				Code:     "view-cartesian",
				Subject:  v.Name,
				Message: fmt.Sprintf("join graph of %v has %d disconnected components; the view is a cartesian product",
					v.Bases, comp),
			})
		}
	}
	return diags
}

// joinComponents counts connected components of the join graph: bases
// are vertices, sharing at least one attribute is an edge.
func joinComponents(db *catalog.Database, bases []string) int {
	parent := make(map[string]string, len(bases))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, b := range bases {
		parent[b] = b
	}
	for i, a := range bases {
		sa, _ := db.Schema(a)
		for _, b := range bases[i+1:] {
			sb, _ := db.Schema(b)
			if !sa.AttrSet().Intersect(sb.AttrSet()).IsEmpty() {
				parent[find(a)] = find(b)
			}
		}
	}
	roots := make(map[string]bool)
	for _, b := range bases {
		roots[find(b)] = true
	}
	return len(roots)
}

// checkCovers runs the complement construction symbolically and reports
// the per-relation storage verdicts of Theorem 2.2, plus the overall
// query-independence verdict of Theorem 3.1 as a separate diagnostic
// (nil when the construction failed).
func checkCovers(db *catalog.Database, views *view.Set, opts core.Options) ([]Diagnostic, *Diagnostic) {
	var diags []Diagnostic
	comp, err := core.Compute(db, views, opts)
	if err != nil {
		return []Diagnostic{{
			Severity: Error,
			Code:     "complement",
			Message:  fmt.Sprintf("complement construction failed: %v", err),
		}}, nil
	}
	stored := 0
	for _, e := range comp.Entries() {
		switch {
		case e.AlwaysEmpty:
			// The views alone determine the relation: its complement is
			// provably empty, so nothing extra is stored or maintained.
			msg := "reconstructible from the views alone (complement provably empty"
			if len(e.Covers) > 0 {
				msg += "; key covers: " + coverList(e.Covers)
			}
			msg += ")"
			diags = append(diags, Diagnostic{
				Severity: Info,
				Code:     "cover-complete",
				Subject:  e.Base,
				Message:  msg,
			})
		case isFullCopy(e.Def, e.Base):
			stored++
			diags = append(diags, Diagnostic{
				Severity: Warning,
				Code:     "cover-copy",
				Subject:  e.Base,
				Message: fmt.Sprintf("no view carries information about %s: its complement %s is a full copy of the relation",
					e.Base, e.Name),
			})
		default:
			stored++
			msg := fmt.Sprintf("needs stored complement %s = %s", e.Name, e.Def)
			if len(e.Covers) > 0 {
				msg += "; key covers: " + coverList(e.Covers)
			}
			diags = append(diags, Diagnostic{
				Severity: Info,
				Code:     "cover-partial",
				Subject:  e.Base,
				Message:  msg,
			})
		}
	}
	// Theorem 3.1: once (V, C) is a complement pair, every PSJ query over
	// D translates to the warehouse and evaluates without source access.
	qi := &Diagnostic{
		Severity: Info,
		Code:     "query-independence",
		Message: fmt.Sprintf("warehouse is query-independent (Theorem 3.1): %d of %d base relations need stored complements",
			stored, len(comp.Entries())),
	}
	return diags, qi
}

// isFullCopy reports whether a complement definition is the base relation
// itself — the degenerate case where the views contribute nothing.
func isFullCopy(def algebra.Expr, base string) bool {
	b, ok := def.(*algebra.Base)
	return ok && b.Name == base
}

func coverList(covers []core.Cover) string {
	parts := make([]string, len(covers))
	for i, c := range covers {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// CheckSpec verifies a parsed-in-diagnostic-mode .dw specification: the
// parse issues become Error diagnostics with their source lines, and the
// surviving definition goes through Check with positions attached from
// the spec. This is the engine behind `dwctl vet` and the dwserve
// startup gate.
func CheckSpec(ds *parse.DiagSpec, opts core.Options) []Diagnostic {
	var diags []Diagnostic
	for _, is := range ds.Issues {
		diags = append(diags, issueDiagnostic(is))
	}
	specBroken := HasErrors(diags)
	for _, d := range Check(ds.Spec.DB, ds.Spec.Views, opts) {
		// The query-independence verdict describes the surviving spec; it
		// would mislead next to errors from statements that were dropped.
		if specBroken && d.Code == "query-independence" {
			continue
		}
		if d.Line == 0 {
			if ln, ok := ds.ViewLines[d.Subject]; ok && strings.HasPrefix(d.Code, "view-") {
				d.Line = ln
			}
		}
		diags = append(diags, d)
	}
	sortDiags(diags)
	return diags
}

// issueDiagnostic converts one lax-parse issue into a diagnostic,
// classifying by the typed cause where one exists.
func issueDiagnostic(is parse.Issue) Diagnostic {
	d := Diagnostic{
		Severity: Error,
		Code:     "spec",
		Subject:  is.Subject,
		Line:     is.Line,
		Message:  strings.TrimPrefix(is.Err.Error(), fmt.Sprintf("line %d: ", is.Line)),
	}
	var ce *constraint.CycleError
	switch {
	case errors.As(is.Err, &ce):
		d.Code = "ind-cycle"
		d.Path = append([]string(nil), ce.Path...)
		d.Message = fmt.Sprintf("inclusion dependencies are cyclic: %s (Theorem 2.2 requires an acyclic IND set)",
			strings.Join(ce.Path, " → "))
	case errors.Is(is.Err, algebra.ErrUnknownRelation):
		d.Code = "unknown-relation"
	case strings.Contains(is.Err.Error(), "not a PSJ view"),
		strings.Contains(is.Err.Error(), "projects onto"),
		strings.Contains(is.Err.Error(), "selection references"):
		d.Code = "view-def"
	case strings.Contains(is.Err.Error(), "unknown schema"),
		strings.Contains(is.Err.Error(), "unknown relation"):
		d.Code = "unknown-relation"
	}
	return d
}

// sortDiags orders diagnostics by line (unpositioned findings last),
// then severity (errors first), code, and subject — the stable order the
// golden tests pin down.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		al, bl := a.Line, b.Line
		if al == 0 {
			al = 1 << 30
		}
		if bl == 0 {
			bl = 1 << 30
		}
		if al != bl {
			return al < bl
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Subject < b.Subject
	})
}
