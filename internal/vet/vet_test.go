package vet

import (
	"strings"
	"testing"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

func figure1() (*catalog.Database, *view.Set) {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:string", "clerk:string")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	vs, err := view.NewSet(db, view.NewPSJ("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))
	if err != nil {
		panic(err)
	}
	return db, vs
}

func codes(diags []Diagnostic) map[string]int {
	m := make(map[string]int)
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

func TestCheckCleanConfig(t *testing.T) {
	db, vs := figure1()
	diags := Check(db, vs, core.Theorem22())
	if HasErrors(diags) {
		t.Fatalf("clean config produced errors:\n%s", Render(diags))
	}
	c := codes(diags)
	if c["query-independence"] != 1 {
		t.Errorf("missing query-independence verdict: %v", c)
	}
	if c["cover-partial"]+c["cover-complete"]+c["cover-copy"] != 2 {
		t.Errorf("expected one cover verdict per base relation: %v", c)
	}
}

func TestCheckIndCycle(t *testing.T) {
	db, vs := figure1()
	// catalog.AddIND rejects cycles eagerly, so inject one underneath it —
	// Check must still catch a database whose constraints were assembled
	// outside the catalog API.
	db.Constraints().AddIND("Sale", "Emp", "clerk")
	db.Constraints().AddIND("Emp", "Sale", "clerk")
	diags := Check(db, vs, core.Theorem22())
	if !HasErrors(diags) {
		t.Fatalf("cyclic IND set not reported:\n%s", Render(diags))
	}
	var cyc *Diagnostic
	for i, d := range diags {
		if d.Code == "ind-cycle" {
			cyc = &diags[i]
		}
	}
	if cyc == nil {
		t.Fatalf("no ind-cycle diagnostic:\n%s", Render(diags))
	}
	if got, want := strings.Join(cyc.Path, "→"), "Emp→Sale→Emp"; got != want {
		t.Errorf("cycle path = %s, want %s", got, want)
	}
	// With the topological order gone, cover analysis must be withheld.
	c := codes(diags)
	if c["cover-partial"]+c["cover-complete"]+c["cover-copy"]+c["query-independence"] != 0 {
		t.Errorf("cover/QI verdicts emitted despite cycle: %v", c)
	}
}

func TestCheckJoinTypeMismatch(t *testing.T) {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:string", "clerk:int")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	vs, err := view.NewSet(db, view.NewPSJ("Sold", []string{"item", "clerk"}, nil, "Sale", "Emp"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(db, vs, core.Theorem22())
	found := false
	for _, d := range diags {
		if d.Code == "view-types" && d.Subject == "Sold" {
			found = true
			if d.Severity != Error {
				t.Errorf("view-types severity = %v, want error", d.Severity)
			}
			if !strings.Contains(d.Message, "clerk") {
				t.Errorf("message does not name the attribute: %s", d.Message)
			}
		}
	}
	if !found {
		t.Fatalf("join type mismatch not reported:\n%s", Render(diags))
	}
}

func TestCheckUntypedAttributesJoinFreely(t *testing.T) {
	// KindNull (untyped attrs like "A") joins with anything.
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("R1", "A", "B").WithKey("A")).
		MustAddSchema(relation.NewSchema("R2", "A:int", "C").WithKey("A"))
	vs, err := view.NewSet(db, view.NewPSJ("V", []string{"A", "B", "C"}, nil, "R1", "R2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Check(db, vs, core.Theorem22()) {
		if d.Code == "view-types" {
			t.Errorf("untyped join attribute flagged: %v", d)
		}
	}
}

func TestCheckCartesian(t *testing.T) {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("R", "a:int")).
		MustAddSchema(relation.NewSchema("S", "b:int"))
	vs, err := view.NewSet(db, view.NewPSJ("RS", []string{"a", "b"}, nil, "R", "S"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(db, vs, core.Theorem22())
	if HasErrors(diags) {
		t.Fatalf("cartesian join must warn, not error:\n%s", Render(diags))
	}
	c := codes(diags)
	if c["view-cartesian"] != 1 {
		t.Errorf("cartesian product not warned about: %v", c)
	}
}

func TestCheckFullCopyComplement(t *testing.T) {
	db, _ := figure1()
	db.MustAddSchema(relation.NewSchema("Lonely", "x:int"))
	vs, err := view.NewSet(db, view.NewPSJ("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(db, vs, core.Theorem22())
	found := false
	for _, d := range diags {
		if d.Code == "cover-copy" && d.Subject == "Lonely" {
			found = true
			if d.Severity != Warning {
				t.Errorf("cover-copy severity = %v, want warning", d.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("uncovered relation not reported as full copy:\n%s", Render(diags))
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: Error, Code: "ind-cycle", Subject: "A", Line: 7, Message: "boom"}
	if got, want := d.String(), "line 7: error[ind-cycle] A: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d = Diagnostic{Severity: Info, Code: "query-independence", Message: "fine"}
	if got, want := d.String(), "info[query-independence]: fine"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors([]Diagnostic{{Severity: Info}, {Severity: Warning}}) {
		t.Error("warnings counted as errors")
	}
	if !HasErrors([]Diagnostic{{Severity: Info}, {Severity: Error}}) {
		t.Error("error not detected")
	}
	if HasErrors(nil) {
		t.Error("empty slice has errors")
	}
}
