package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

func sampleState(t *testing.T) map[string]*relation.Relation {
	t.Helper()
	r := relation.New("a", "b", "c", "d", "e")
	r.InsertValues(relation.Int(1), relation.Float(2.5), relation.String_("x|y'z"), relation.Bool(true), relation.Null())
	r.InsertValues(relation.Int(-9), relation.Float(0), relation.String_(""), relation.Bool(false), relation.Int(7))
	empty := relation.New("q")
	return map[string]*relation.Relation{"R": r, "Empty": empty}
}

func TestRoundTrip(t *testing.T) {
	ms := sampleState(t)
	var buf bytes.Buffer
	if err := Save(&buf, ms); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("relations = %d", len(got))
	}
	for name, want := range ms {
		if !got[name].Equal(want) {
			t.Errorf("%s differs:\ngot  %v\nwant %v", name, got[name], want)
		}
	}
	// Attribute order survives too.
	if strings.Join(got["R"].Attrs(), ",") != "a,b,c,d,e" {
		t.Errorf("attribute order lost: %v", got["R"].Attrs())
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	ms := sampleState(t)
	if err := SaveFile(path, ms); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got["R"].Equal(ms["R"]) {
		t.Error("file round trip lost data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a snapshot")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage accepted or mistyped error: %v", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 15, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d accepted or mistyped error: %v", cut, err)
		}
	}
	// And through the file path, as a crashed write would leave it.
	path := filepath.Join(t.TempDir(), "trunc.gob")
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated file accepted or mistyped error: %v", err)
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-3] ^= 0x40 // flip one payload bit; CRC must catch it
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip accepted or mistyped error: %v", err)
	}
}

func TestMarksRoundTrip(t *testing.T) {
	marks := map[string]uint64{"sales": 17, "company": 4}
	var buf bytes.Buffer
	if err := SaveMarks(&buf, sampleState(t), marks); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadMarks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["sales"] != 17 || got["company"] != 4 {
		t.Errorf("marks = %v", got)
	}
	// Markless snapshots load with nil marks.
	var plain bytes.Buffer
	if err := Save(&plain, sampleState(t)); err != nil {
		t.Fatal(err)
	}
	if _, m, err := LoadMarks(&plain); err != nil || len(m) != 0 {
		t.Errorf("markless snapshot: marks=%v err=%v", m, err)
	}
}

// TestSaveFileAtomic: a save that crashes before the rename leaves the
// previous snapshot fully intact, and no temp litter survives a
// successful save.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.gob")
	first := sampleState(t)
	if err := SaveFile(path, first); err != nil {
		t.Fatal(err)
	}
	// Crash between temp write and rename.
	disarm := chaos.Arm("snapshot.rename", 1, errors.New("injected crash"))
	defer disarm()
	second := sampleState(t)
	second["R"].InsertValues(relation.Int(99), relation.Float(1), relation.String_("new"), relation.Bool(true), relation.Null())
	if err := SaveFile(path, second); err == nil {
		t.Fatal("armed save did not fail")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("old snapshot unreadable after crashed save: %v", err)
	}
	if !got["R"].Equal(first["R"]) {
		t.Error("crashed save mutated the previous snapshot")
	}
	chaos.Reset()
	if err := SaveFile(path, second); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got["R"].Equal(second["R"]) {
		t.Error("second save not visible")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".snap-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestVerify(t *testing.T) {
	ms := sampleState(t)
	expected := map[string]relation.AttrSet{
		"R":     relation.NewAttrSet("a", "b", "c", "d", "e"),
		"Empty": relation.NewAttrSet("q"),
	}
	if err := Verify(ms, expected); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	// Missing relation.
	if err := Verify(map[string]*relation.Relation{"R": ms["R"]}, expected); err == nil {
		t.Error("missing relation accepted")
	}
	// Wrong schema.
	bad := map[string]*relation.Relation{"R": relation.New("z"), "Empty": ms["Empty"]}
	if err := Verify(bad, expected); err == nil {
		t.Error("wrong schema accepted")
	}
	// Extra relation.
	extra := sampleState(t)
	extra["Ghost"] = relation.New("g")
	if err := Verify(extra, expected); err == nil {
		t.Error("extra relation accepted")
	}
}

// TestWarehouseSnapshotCycle is the operational scenario: materialize,
// snapshot, restart from disk, keep maintaining — the restored warehouse
// answers queries and reconstructs bases exactly like the original.
func TestWarehouseSnapshotCycle(t *testing.T) {
	sc := workload.Figure1(true)
	comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
	if err != nil {
		t.Fatal(err)
	}
	st := workload.Figure1State(sc.DB)
	w := warehouse.New(comp)
	if err := w.Initialize(st); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wh.gob")
	if err := SaveFile(path, w.State()); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	expected := map[string]relation.AttrSet{}
	for name, attrs := range comp.Resolver() {
		if _, ok := comp.Views().ByName(name); ok || strings.HasPrefix(name, "C_") {
			expected[name] = attrs
		}
	}
	if err := Verify(restored, expected); err != nil {
		t.Fatal(err)
	}
	w2 := warehouse.New(comp)
	w2.LoadState(restored)
	bases, err := w2.ReconstructBases()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sc.DB.Names() {
		orig, _ := st.Relation(name)
		if !bases[name].Equal(orig) {
			t.Errorf("restored warehouse reconstructs %s wrongly", name)
		}
	}
}
