package snapshot

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

func sampleState(t *testing.T) map[string]*relation.Relation {
	t.Helper()
	r := relation.New("a", "b", "c", "d", "e")
	r.InsertValues(relation.Int(1), relation.Float(2.5), relation.String_("x|y'z"), relation.Bool(true), relation.Null())
	r.InsertValues(relation.Int(-9), relation.Float(0), relation.String_(""), relation.Bool(false), relation.Int(7))
	empty := relation.New("q")
	return map[string]*relation.Relation{"R": r, "Empty": empty}
}

func TestRoundTrip(t *testing.T) {
	ms := sampleState(t)
	var buf bytes.Buffer
	if err := Save(&buf, ms); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("relations = %d", len(got))
	}
	for name, want := range ms {
		if !got[name].Equal(want) {
			t.Errorf("%s differs:\ngot  %v\nwant %v", name, got[name], want)
		}
	}
	// Attribute order survives too.
	if strings.Join(got["R"].Attrs(), ",") != "a,b,c,d,e" {
		t.Errorf("attribute order lost: %v", got["R"].Attrs())
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	ms := sampleState(t)
	if err := SaveFile(path, ms); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got["R"].Equal(ms["R"]) {
		t.Error("file round trip lost data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong version.
	var buf bytes.Buffer
	if err := Save(&buf, map[string]*relation.Relation{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// A crude but effective way to produce a valid gob with another
	// version: re-encode with the struct hacked via Save is not possible;
	// instead decode-check is covered by the garbage case above and the
	// Verify tests below.
	_ = data
}

func TestVerify(t *testing.T) {
	ms := sampleState(t)
	expected := map[string]relation.AttrSet{
		"R":     relation.NewAttrSet("a", "b", "c", "d", "e"),
		"Empty": relation.NewAttrSet("q"),
	}
	if err := Verify(ms, expected); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	// Missing relation.
	if err := Verify(map[string]*relation.Relation{"R": ms["R"]}, expected); err == nil {
		t.Error("missing relation accepted")
	}
	// Wrong schema.
	bad := map[string]*relation.Relation{"R": relation.New("z"), "Empty": ms["Empty"]}
	if err := Verify(bad, expected); err == nil {
		t.Error("wrong schema accepted")
	}
	// Extra relation.
	extra := sampleState(t)
	extra["Ghost"] = relation.New("g")
	if err := Verify(extra, expected); err == nil {
		t.Error("extra relation accepted")
	}
}

// TestWarehouseSnapshotCycle is the operational scenario: materialize,
// snapshot, restart from disk, keep maintaining — the restored warehouse
// answers queries and reconstructs bases exactly like the original.
func TestWarehouseSnapshotCycle(t *testing.T) {
	sc := workload.Figure1(true)
	comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
	if err != nil {
		t.Fatal(err)
	}
	st := workload.Figure1State(sc.DB)
	w := warehouse.New(comp)
	if err := w.Initialize(st); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wh.gob")
	if err := SaveFile(path, w.State()); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	expected := map[string]relation.AttrSet{}
	for name, attrs := range comp.Resolver() {
		if _, ok := comp.Views().ByName(name); ok || strings.HasPrefix(name, "C_") {
			expected[name] = attrs
		}
	}
	if err := Verify(restored, expected); err != nil {
		t.Fatal(err)
	}
	w2 := warehouse.New(comp)
	w2.LoadState(restored)
	bases, err := w2.ReconstructBases()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sc.DB.Names() {
		orig, _ := st.Relation(name)
		if !bases[name].Equal(orig) {
			t.Errorf("restored warehouse reconstructs %s wrongly", name)
		}
	}
}
