// Package snapshot persists materialized warehouse states (and any other
// relation maps) to disk and restores them. A warehouse deployment saves
// its state after each maintenance batch and restarts from the snapshot —
// without ever contacting the sources, which is the whole point of an
// independent warehouse: its state is self-contained.
//
// The format is a gob stream of a small versioned wire structure; values
// round-trip exactly (kind-tagged), and relations restore with their
// attribute order and set semantics intact.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

// formatVersion guards against reading snapshots from incompatible
// versions of the wire format.
const formatVersion = 1

// wireValue is the exported mirror of relation.Value for gob.
type wireValue struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
}

func toWire(v relation.Value) wireValue {
	switch v.Kind() {
	case relation.KindBool:
		return wireValue{Kind: uint8(relation.KindBool), B: v.AsBool()}
	case relation.KindInt:
		return wireValue{Kind: uint8(relation.KindInt), I: v.AsInt()}
	case relation.KindFloat:
		return wireValue{Kind: uint8(relation.KindFloat), F: v.AsFloat()}
	case relation.KindString:
		return wireValue{Kind: uint8(relation.KindString), S: v.AsString()}
	default:
		return wireValue{Kind: uint8(relation.KindNull)}
	}
}

func fromWire(w wireValue) (relation.Value, error) {
	switch relation.Kind(w.Kind) {
	case relation.KindNull:
		return relation.Null(), nil
	case relation.KindBool:
		return relation.Bool(w.B), nil
	case relation.KindInt:
		return relation.Int(w.I), nil
	case relation.KindFloat:
		return relation.Float(w.F), nil
	case relation.KindString:
		return relation.String_(w.S), nil
	default:
		return relation.Value{}, fmt.Errorf("snapshot: unknown value kind %d", w.Kind)
	}
}

// wireRelation is one serialized relation.
type wireRelation struct {
	Attrs []string
	Rows  [][]wireValue
}

// wireSnapshot is the on-disk structure.
type wireSnapshot struct {
	Version   int
	Relations map[string]wireRelation
}

// Save writes the relation map to w.
func Save(w io.Writer, ms map[string]*relation.Relation) error {
	out := wireSnapshot{
		Version:   formatVersion,
		Relations: make(map[string]wireRelation, len(ms)),
	}
	for name, r := range ms {
		wr := wireRelation{Attrs: append([]string(nil), r.Attrs()...)}
		for _, t := range r.SortedTuples() {
			row := make([]wireValue, len(t))
			for i, v := range t {
				row[i] = toWire(v)
			}
			wr.Rows = append(wr.Rows, row)
		}
		out.Relations[name] = wr
	}
	return gob.NewEncoder(w).Encode(out)
}

// Load reads a relation map from r.
func Load(r io.Reader) (algebra.MapState, error) {
	var in wireSnapshot
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if in.Version != formatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", in.Version, formatVersion)
	}
	out := make(algebra.MapState, len(in.Relations))
	for name, wr := range in.Relations {
		rel := relation.New(wr.Attrs...)
		for _, row := range wr.Rows {
			t := make(relation.Tuple, len(row))
			for i, wv := range row {
				v, err := fromWire(wv)
				if err != nil {
					return nil, fmt.Errorf("snapshot: relation %s: %w", name, err)
				}
				t[i] = v
			}
			rel.Insert(t)
		}
		out[name] = rel
	}
	return out, nil
}

// SaveFile writes the relation map to a file (created or truncated).
func SaveFile(path string, ms map[string]*relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, ms); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a relation map from a file.
func LoadFile(path string) (algebra.MapState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Verify checks that a restored state matches the warehouse layout
// expected by the resolver: every expected relation present with the
// right attribute set, no extras.
func Verify(ms algebra.MapState, expected map[string]relation.AttrSet) error {
	for name, attrs := range expected {
		r, ok := ms[name]
		if !ok {
			return fmt.Errorf("snapshot: missing relation %q", name)
		}
		if !r.AttrSet().Equal(attrs) {
			return fmt.Errorf("snapshot: relation %q has attributes %v, want %v", name, r.AttrSet(), attrs)
		}
	}
	for name := range ms {
		if _, ok := expected[name]; !ok {
			return fmt.Errorf("snapshot: unexpected relation %q", name)
		}
	}
	return nil
}
