// Package snapshot persists materialized warehouse states (and any other
// relation maps) to disk and restores them. A warehouse deployment saves
// its state after each maintenance batch and restarts from the snapshot —
// without ever contacting the sources, which is the whole point of an
// independent warehouse: its state is self-contained.
//
// The on-disk format is crash-safe end to end: a fixed binary header
// carrying a CRC32 of the gob payload (so truncated or bit-rotted files
// are rejected with ErrCorrupt instead of being half-loaded), written to
// a temp file that is fsync'd and atomically renamed into place (so a
// crash mid-write leaves the previous snapshot intact). Snapshots also
// carry per-source applied-sequence watermarks, which tell a recovering
// integrator where in its journal to resume replay.
//
// Mark names beginning with "~" are reserved for replication metadata
// (the node's epoch and log position, see internal/replica): they ride
// the same marks map — no format bump — and are split back out by
// replica.SplitMetaMarks on load, so source names must never start
// with "~".
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/relation"
)

// formatVersion guards against reading snapshots from incompatible
// versions of the wire format. Version 2 added the CRC header and the
// applied-sequence watermarks; version 1 files (headerless gob) are no
// longer readable.
const formatVersion = 2

// magic opens every snapshot file; a file without it is not a snapshot.
var magic = [4]byte{'D', 'W', 'S', 'N'}

// ErrCorrupt reports a snapshot that cannot be trusted: bad magic,
// truncated payload, or checksum mismatch. Callers distinguish it from
// I/O errors to decide between "fall back to older snapshot" and
// "retry the read".
var ErrCorrupt = errors.New("snapshot: corrupt or truncated")

// WireValue is the exported gob mirror of relation.Value. The journal
// package reuses it so updates and states share one value codec.
type WireValue struct {
	Kind uint8
	B    bool
	I    int64
	F    float64
	S    string
}

// ToWireValue converts a relation value for serialization.
func ToWireValue(v relation.Value) WireValue {
	switch v.Kind() {
	case relation.KindBool:
		return WireValue{Kind: uint8(relation.KindBool), B: v.AsBool()}
	case relation.KindInt:
		return WireValue{Kind: uint8(relation.KindInt), I: v.AsInt()}
	case relation.KindFloat:
		return WireValue{Kind: uint8(relation.KindFloat), F: v.AsFloat()}
	case relation.KindString:
		return WireValue{Kind: uint8(relation.KindString), S: v.AsString()}
	default:
		return WireValue{Kind: uint8(relation.KindNull)}
	}
}

// FromWireValue restores a relation value.
func FromWireValue(w WireValue) (relation.Value, error) {
	switch relation.Kind(w.Kind) {
	case relation.KindNull:
		return relation.Null(), nil
	case relation.KindBool:
		return relation.Bool(w.B), nil
	case relation.KindInt:
		return relation.Int(w.I), nil
	case relation.KindFloat:
		return relation.Float(w.F), nil
	case relation.KindString:
		return relation.String_(w.S), nil
	default:
		return relation.Value{}, fmt.Errorf("snapshot: unknown value kind %d", w.Kind)
	}
}

// WireRelation is one serialized relation: attribute order plus rows in
// that order.
type WireRelation struct {
	Attrs []string
	Rows  [][]WireValue
}

// ToWireRelation serializes a relation (rows in canonical sorted order,
// so equal relations serialize identically).
func ToWireRelation(r *relation.Relation) WireRelation {
	wr := WireRelation{Attrs: append([]string(nil), r.Attrs()...)}
	for _, t := range r.SortedTuples() {
		row := make([]WireValue, len(t))
		for i, v := range t {
			row[i] = ToWireValue(v)
		}
		wr.Rows = append(wr.Rows, row)
	}
	return wr
}

// FromWireRelation restores a relation.
func FromWireRelation(wr WireRelation) (*relation.Relation, error) {
	rel := relation.New(wr.Attrs...)
	for _, row := range wr.Rows {
		t := make(relation.Tuple, len(row))
		for i, wv := range row {
			v, err := FromWireValue(wv)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		rel.Insert(t)
	}
	return rel, nil
}

// wireSnapshot is the gob payload behind the binary header.
type wireSnapshot struct {
	Version   int
	Relations map[string]WireRelation
	// Marks are per-source applied-sequence watermarks: every journal
	// record with Seq ≤ Marks[source] is already reflected in the
	// relations and must be skipped during replay.
	Marks map[string]uint64
}

// Save writes the relation map to w (no watermarks).
func Save(w io.Writer, ms map[string]*relation.Relation) error {
	return SaveMarks(w, ms, nil)
}

// SaveMarks writes the relation map plus per-source applied-sequence
// watermarks to w: header (magic, CRC32, payload length) then payload.
func SaveMarks(w io.Writer, ms map[string]*relation.Relation, marks map[string]uint64) error {
	out := wireSnapshot{
		Version:   formatVersion,
		Relations: make(map[string]WireRelation, len(ms)),
	}
	for name, r := range ms {
		out.Relations[name] = ToWireRelation(r)
	}
	if len(marks) > 0 {
		out.Marks = make(map[string]uint64, len(marks))
		for s, q := range marks {
			out.Marks[s] = q
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(out); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:4], magic[:])
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Load reads a relation map from r, discarding any watermarks.
func Load(r io.Reader) (algebra.MapState, error) {
	ms, _, err := LoadMarks(r)
	return ms, err
}

// LoadMarks reads a relation map and its watermarks from r. Corrupt or
// truncated input fails with an error wrapping ErrCorrupt.
func LoadMarks(r io.Reader) (algebra.MapState, map[string]uint64, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:4], magic[:]) {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	wantCRC := binary.BigEndian.Uint32(hdr[4:8])
	length := binary.BigEndian.Uint64(hdr[8:16])
	const maxPayload = 1 << 32
	if length > maxPayload {
		return nil, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var in wireSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("%w: undecodable payload: %v", ErrCorrupt, err)
	}
	if in.Version != formatVersion {
		return nil, nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", in.Version, formatVersion)
	}
	out := make(algebra.MapState, len(in.Relations))
	for name, wr := range in.Relations {
		rel, err := FromWireRelation(wr)
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot: relation %s: %w", name, err)
		}
		out[name] = rel
	}
	return out, in.Marks, nil
}

// SaveFile writes the relation map to a file atomically (see
// SaveFileMarks).
func SaveFile(path string, ms map[string]*relation.Relation) error {
	return SaveFileMarks(path, ms, nil)
}

// SaveFileMarks writes the relation map and watermarks to path with
// crash-safe semantics: the bytes go to a temp file in the target
// directory, the temp file is fsync'd, then renamed over path. A crash
// at any point leaves either the old complete snapshot or the new
// complete snapshot — never a torn mix.
func SaveFileMarks(path string, ms map[string]*relation.Relation, marks map[string]uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := chaos.Point("snapshot.write"); err != nil {
		return err
	}
	if err := SaveMarks(tmp, ms, marks); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := chaos.Point("snapshot.rename"); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		tmp = nil
		return err
	}
	tmp = nil
	// Persist the rename itself: fsync the directory (best effort on
	// filesystems that refuse directory fsync).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a relation map from a file.
func LoadFile(path string) (algebra.MapState, error) {
	ms, _, err := LoadFileMarks(path)
	return ms, err
}

// LoadFileMarks reads a relation map and its watermarks from a file.
func LoadFileMarks(path string) (algebra.MapState, map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadMarks(f)
}

// Verify checks that a restored state matches the warehouse layout
// expected by the resolver: every expected relation present with the
// right attribute set, no extras.
func Verify(ms algebra.MapState, expected map[string]relation.AttrSet) error {
	for name, attrs := range expected {
		r, ok := ms[name]
		if !ok {
			return fmt.Errorf("snapshot: missing relation %q", name)
		}
		if !r.AttrSet().Equal(attrs) {
			return fmt.Errorf("snapshot: relation %q has attributes %v, want %v", name, r.AttrSet(), attrs)
		}
	}
	for name := range ms {
		if _, ok := expected[name]; !ok {
			return fmt.Errorf("snapshot: unexpected relation %q", name)
		}
	}
	return nil
}
