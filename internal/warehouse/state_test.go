package warehouse

import (
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

func TestCloneAndLoadState(t *testing.T) {
	w, _ := buildFigure1(t, false)
	if w.Complement() == nil {
		t.Fatal("Complement accessor lost")
	}
	snap := w.CloneState()
	// Mutating the clone must not touch the warehouse.
	snap["Sold"].InsertValues(relation.String_("X"), relation.String_("Y"), relation.Int(1))
	sold, _ := w.Relation("Sold")
	if sold.Len() != 3 {
		t.Error("CloneState shares storage")
	}
	// LoadState installs the snapshot verbatim.
	w2 := New(w.Complement())
	w2.LoadState(snap)
	got, _ := w2.Relation("Sold")
	if got.Len() != 4 {
		t.Errorf("LoadState lost data: %d", got.Len())
	}
	// State() exposes the live map.
	if len(w2.State()) != len(snap) {
		t.Error("State() inconsistent")
	}
}

func TestTranslateQueryUnoptimized(t *testing.T) {
	w, sc := buildFigure1(t, true)
	q := algebra.NewSelect(algebra.NewBase("Emp"),
		algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30)))
	plain, err := w.TranslateQueryUnoptimized(q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := w.TranslateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Both must evaluate identically on the warehouse.
	a, err := algebra.Eval(plain, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := algebra.Eval(opt, w)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("optimizer changed the answer:\nplain %s → %v\nopt   %s → %v", plain, a, opt, b)
	}
	// The unoptimized form keeps the selection on top of the union; the
	// optimized form distributes it inside (top node becomes the union).
	if _, ok := plain.(*algebra.Select); !ok {
		t.Errorf("unexpected plain shape: %s", plain)
	}
	if _, ok := opt.(*algebra.Union); !ok {
		t.Errorf("pushdown did not fire: %s", opt)
	}
	// Error paths.
	if _, err := w.TranslateQueryUnoptimized(algebra.NewBase("Nope")); err == nil {
		t.Error("invalid query accepted")
	}
	_ = sc
}

func TestCheckQueryIndependenceReportsFailure(t *testing.T) {
	// A deliberately broken "complement" (prefixed differently so names
	// don't collide) is not checked here — instead, feed a query whose
	// translation is fine but compare against a corpus including an
	// inconsistent state for the constraint-based complement: with
	// referential integrity assumed and C_Sale dropped, a state violating
	// the IND must make the check fail.
	sc := workload.Figure1(true)
	comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
	if err != nil {
		t.Fatal(err)
	}
	w := New(comp)
	if err := w.Initialize(sc.DB.NewState()); err != nil {
		t.Fatal(err)
	}
	bad := sc.DB.NewState().
		MustInsert("Sale", relation.String_("TV"), relation.String_("Ghost")) // violates the IND
	err = w.CheckQueryIndependence(
		[]algebra.Expr{algebra.NewBase("Sale")},
		[]algebra.State{bad})
	if err == nil {
		t.Error("constraint-violating state must break the dropped-complement reconstruction")
	}
	// Error paths: invalid query.
	if err := w.CheckQueryIndependence([]algebra.Expr{algebra.NewBase("Nope")}, nil); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	sc := workload.Figure1(false)
	// A name clash makes Compute fail inside Build.
	views := workload.Figure1(false).Views
	opts := core.Proposition22()
	opts.NamePrefix = "Sold" // C-prefix collides with the view name "Sold"? No — prefix+base: "SoldSale".
	// Instead force failure via UseINDs without UseKeys.
	bad := core.Options{UseINDs: true}
	if _, err := Build(sc.DB, views, bad, workload.Figure1State(sc.DB)); err == nil {
		t.Error("invalid options accepted by Build")
	}
}
