package warehouse

import (
	"strings"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

func corpus(t *testing.T, db *catalog.Database, n, size int) []algebra.State {
	t.Helper()
	return workload.States(workload.NewGen(db, 3).States(n, size)...)
}

func buildFigure1(t *testing.T, withRefInt bool) (*Warehouse, workload.Scenario) {
	t.Helper()
	sc := workload.Figure1(withRefInt)
	opts := core.Proposition22()
	if withRefInt {
		opts = core.Theorem22()
	}
	w, err := Build(sc.DB, sc.Views, opts, workload.Figure1State(sc.DB))
	if err != nil {
		t.Fatal(err)
	}
	return w, sc
}

func TestBuildAndState(t *testing.T) {
	w, _ := buildFigure1(t, false)
	names := w.Names()
	want := []string{"C_Emp", "C_Sale", "Sold"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names = %v, want %v", names, want)
		}
	}
	sold, ok := w.Relation("Sold")
	if !ok || sold.Len() != 3 {
		t.Errorf("Sold = %v", sold)
	}
	cEmp, _ := w.Relation("C_Emp")
	if cEmp.Len() != 1 { // Paula
		t.Errorf("C_Emp = %v", cEmp)
	}
	// Size = 3 (Sold) + 1 (C_Emp) + 0 (C_Sale).
	if w.Size() != 4 {
		t.Errorf("Size = %d", w.Size())
	}
}

func TestReconstructBases(t *testing.T) {
	w, sc := buildFigure1(t, false)
	bases, err := w.ReconstructBases()
	if err != nil {
		t.Fatal(err)
	}
	st := workload.Figure1State(sc.DB)
	for _, name := range []string{"Sale", "Emp"} {
		orig, _ := st.Relation(name)
		if !bases[name].Equal(orig) {
			t.Errorf("reconstructed %s =\n%s\nwant\n%s", name, bases[name], orig)
		}
	}
}

// TestExample12QueryTranslation reproduces Example 1.2 and the Section 3
// walkthrough: the union-of-clerks query and the ages-of-computer-sellers
// query, both answered from the warehouse alone.
func TestExample12QueryTranslation(t *testing.T) {
	w, sc := buildFigure1(t, false)

	q := algebra.NewUnion(
		algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
		algebra.NewProject(algebra.NewBase("Emp"), "clerk"))
	qHat, err := w.TranslateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// The translated query must reference warehouse names only.
	for b := range algebra.Bases(qHat) {
		if b != "Sold" && !strings.HasPrefix(b, "C_") {
			t.Errorf("Q̂ references %q: %s", b, qHat)
		}
	}
	got, err := w.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New("clerk")
	for _, c := range []string{"Mary", "John", "Paula"} {
		want.InsertValues(relation.String_(c))
	}
	if !got.Equal(want) {
		t.Errorf("Q̂ answer = %v, want all three clerks", got)
	}

	// Section 3's example: ages of clerks that sold computers.
	q2 := algebra.NewProject(
		algebra.NewJoin(
			algebra.NewSelect(algebra.NewBase("Sale"),
				algebra.AttrEqConst("item", relation.String_("PC"))),
			algebra.NewBase("Emp")),
		"age")
	got2, err := w.Answer(q2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 1 || !got2.Contains(relation.Tuple{relation.Int(25)}) {
		t.Errorf("ages = %v, want {25}", got2)
	}

	_ = sc
}

// TestTheorem31 verifies Q(d) = Q̂(W(d)) over random states for a battery
// of query shapes — the commuting diagram of Figure 2.
func TestTheorem31(t *testing.T) {
	w, sc := buildFigure1(t, false)
	queries := []algebra.Expr{
		algebra.NewBase("Sale"),
		algebra.NewBase("Emp"),
		algebra.NewUnion(
			algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
			algebra.NewProject(algebra.NewBase("Emp"), "clerk")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
		algebra.NewProject(
			algebra.NewSelect(
				algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
				algebra.AttrCmpConst("age", algebra.OpLt, relation.Int(30))),
			"item", "clerk"),
		algebra.NewRename(algebra.NewBase("Emp"), map[string]string{"clerk": "person"}),
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
	}
	if err := w.CheckQueryIndependence(queries, corpus(t, sc.DB, 30, 8)); err != nil {
		t.Error(err)
	}
}

// TestTheorem31WithConstraints runs the same battery on the Theorem 2.2
// complement (referential integrity, dropped C_Sale).
func TestTheorem31WithConstraints(t *testing.T) {
	w, sc := buildFigure1(t, true)
	queries := []algebra.Expr{
		algebra.NewBase("Sale"),
		algebra.NewBase("Emp"),
		algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
		algebra.NewDiff(
			algebra.NewProject(algebra.NewBase("Emp"), "clerk"),
			algebra.NewProject(algebra.NewBase("Sale"), "clerk")),
	}
	if err := w.CheckQueryIndependence(queries, corpus(t, sc.DB, 30, 8)); err != nil {
		t.Error(err)
	}
}

// TestExample12Refutation proves that the UN-augmented warehouse {Sold}
// cannot answer Example 1.2's query: two states with the same Sold but
// different answers.
func TestExample12Refutation(t *testing.T) {
	sc := workload.Figure1(false)
	q := algebra.NewUnion(
		algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
		algebra.NewProject(algebra.NewBase("Emp"), "clerk"))
	soldDef := algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp"))

	// The paper's state and the same state without Paula have identical
	// Sold but different Q answers.
	full := workload.Figure1State(sc.DB)
	noPaula := full.Clone()
	noPaula.MustRelation("Emp").Delete(relation.Tuple{relation.String_("Paula"), relation.Int(32)})
	states := append(corpus(t, sc.DB, 20, 6), full, noPaula)

	wn, found, err := FindAnswerabilityWitness(q, map[string]algebra.Expr{"Sold": soldDef}, states)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no witness: {Sold} appeared able to answer Q")
	}
	if !strings.Contains(wn.String(), "identical warehouse images") {
		t.Errorf("witness description: %s", wn)
	}

	// With the complement added, no witness can exist (W is injective).
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	defs := map[string]algebra.Expr{"Sold": soldDef}
	for _, e := range comp.StoredEntries() {
		defs[e.Name] = e.Def
	}
	_, found, err = FindAnswerabilityWitness(q, defs, states)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("witness found against the augmented warehouse")
	}
}

func TestTranslateQueryErrors(t *testing.T) {
	w, _ := buildFigure1(t, false)
	// Invalid over D.
	if _, err := w.TranslateQuery(algebra.NewBase("Nope")); err == nil {
		t.Error("unknown base accepted")
	}
	if _, err := w.TranslateQuery(algebra.NewUnion(algebra.NewBase("Sale"), algebra.NewBase("Emp"))); err == nil {
		t.Error("invalid union accepted")
	}
}

func TestTranslatedQueriesSimplify(t *testing.T) {
	// Under referential integrity, translating "Sale" must not mention the
	// dropped complement and should reduce to a projection of Sold.
	w, _ := buildFigure1(t, true)
	qHat, err := w.TranslateQuery(algebra.NewBase("Sale"))
	if err != nil {
		t.Fatal(err)
	}
	if algebra.Bases(qHat).Has("C_Sale") {
		t.Errorf("translated Sale references dropped complement: %s", qHat)
	}
	want := algebra.NewProject(algebra.NewBase("Sold"), "clerk", "item")
	if !algebra.Equal(qHat, want) {
		t.Errorf("translated Sale = %s, want %s", qHat, want)
	}
}
