// Package warehouse implements the warehouse side of the paper: the
// augmented warehouse W = V ∪ C as a materialized state, the one-to-one
// mapping W from database states to warehouse states and its inverse W⁻¹
// (Proposition 2.1), query translation Q̂ = Q ∘ W⁻¹ (Section 3, Theorem
// 3.1), and empirical refutation of query independence for un-augmented
// warehouses (Example 1.2).
package warehouse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/view"
)

// ErrReadOnlyReplica reports a mutation attempted against a sealed
// warehouse: a replica following a leader's journal stream. Only the
// replication apply path (which holds the seal) may install relations;
// everything else must be routed to the leader, or it would silently
// diverge from the replicated state.
var ErrReadOnlyReplica = errors.New("warehouse: read-only replica (following a leader; write to the leader instead)")

// Warehouse is a materialized, independent warehouse: the views V plus the
// stored complement relations C, with W⁻¹ available for query translation
// and base-relation reconstruction.
type Warehouse struct {
	comp  *core.Complement
	state algebra.MapState

	// sealed marks the warehouse read-only: Install (the single commit
	// primitive every refresh funnels through) refuses with
	// ErrReadOnlyReplica. A follower holds its warehouse sealed except
	// inside its own serialized replication apply.
	sealed atomic.Bool
}

// New creates an unmaterialized warehouse from a computed complement.
// Call Initialize (or load a state) before answering queries.
func New(comp *core.Complement) *Warehouse {
	return &Warehouse{comp: comp, state: make(algebra.MapState)}
}

// Build runs the paper's Section 5 pipeline in one call: compute the
// complement of the view set under the options, augment the warehouse,
// and materialize it from the database state.
func Build(db *catalog.Database, views *view.Set, opts core.Options, st algebra.State) (*Warehouse, error) {
	comp, err := core.Compute(db, views, opts)
	if err != nil {
		return nil, err
	}
	w := New(comp)
	if err := w.Initialize(st); err != nil {
		return nil, err
	}
	return w, nil
}

// Complement returns the underlying complement (definitions, inverses,
// covers).
func (w *Warehouse) Complement() *core.Complement { return w.comp }

// Initialize materializes every view and stored complement from the given
// database state: w = W(d).
func (w *Warehouse) Initialize(st algebra.State) error {
	ms, err := w.comp.MaterializeWarehouseCtx(nil, st)
	if err != nil {
		return err
	}
	w.state = ms
	return nil
}

// CloneState returns a deep copy of the current warehouse state, usable
// as a snapshot for later LoadState (benchmarks restore pre-states this
// way without re-materializing).
func (w *Warehouse) CloneState() algebra.MapState {
	out := make(algebra.MapState, len(w.state))
	for name, r := range w.state {
		out[name] = r.Clone()
	}
	return out
}

// LoadState installs a previously materialized warehouse state without
// recomputation. The caller is responsible for the state matching the
// warehouse's complement (same relation names and schemas).
func (w *Warehouse) LoadState(ms algebra.MapState) {
	w.state = ms
}

// Relation implements algebra.State over the warehouse's materialized
// relations.
func (w *Warehouse) Relation(name string) (*relation.Relation, bool) {
	r, ok := w.state[name]
	return r, ok
}

// State returns the warehouse state. Callers must treat it as read-only;
// package maintain mutates it through Refresh.
func (w *Warehouse) State() algebra.MapState { return w.state }

// Install replaces one materialized relation. It is the commit
// primitive of the atomic refresh: package maintain applies every delta
// to copies first and installs them only once all of them (and all
// delta consumers) have succeeded, so a failed refresh leaves the
// warehouse bitwise unchanged. A sealed warehouse refuses with
// ErrReadOnlyReplica — the single-writer guard every mutation path
// shares, instead of each caller remembering to check a flag.
func (w *Warehouse) Install(name string, r *relation.Relation) error {
	if w.sealed.Load() {
		return ErrReadOnlyReplica
	}
	w.state[name] = r
	return nil
}

// Seal marks the warehouse read-only: every Install fails with
// ErrReadOnlyReplica until Unseal. The flag does not protect the state
// from concurrent access — callers still serialize as before — it
// protects it from the wrong WRITER: a follower's local update path
// cannot silently diverge from the leader's stream.
func (w *Warehouse) Seal() { w.sealed.Store(true) }

// Unseal lifts the read-only seal. The replication apply path brackets
// each replayed refresh with Unseal/Seal while holding the same lock
// that serializes every reader and writer of the warehouse.
func (w *Warehouse) Unseal() { w.sealed.Store(false) }

// Sealed reports whether the warehouse is read-only.
func (w *Warehouse) Sealed() bool { return w.sealed.Load() }

// Names returns the materialized relation names in sorted order.
func (w *Warehouse) Names() []string {
	out := make([]string, 0, len(w.state))
	for n := range w.state {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of materialized tuples (views plus
// complements) — the warehouse storage cost.
func (w *Warehouse) Size() int {
	n := 0
	for _, r := range w.state {
		n += r.Len()
	}
	return n
}

// TranslateQuery rewrites a query over the base schemata D into the
// equivalent query Q̂ over warehouse relations (Theorem 3.1): every base
// reference is substituted by its inverse expression, and the result is
// simplified. The input is validated against D and the output against the
// warehouse name space.
func (w *Warehouse) TranslateQuery(q algebra.Expr) (algebra.Expr, error) {
	db := w.comp.Database()
	if _, err := algebra.Attrs(q, db); err != nil {
		return nil, fmt.Errorf("warehouse: query invalid over the sources: %w", err)
	}
	translated := algebra.Substitute(q, w.comp.InverseMap())
	res := w.comp.Resolver()
	translated = algebra.Optimize(translated, res)
	if _, err := algebra.Attrs(translated, res); err != nil {
		return nil, fmt.Errorf("warehouse: translated query invalid over the warehouse: %w", err)
	}
	return translated, nil
}

// TranslateQueryUnoptimized performs the substitution and simplification
// of Theorem 3.1 without the pushdown optimizer — the ablation baseline of
// experiment E8.
func (w *Warehouse) TranslateQueryUnoptimized(q algebra.Expr) (algebra.Expr, error) {
	db := w.comp.Database()
	if _, err := algebra.Attrs(q, db); err != nil {
		return nil, fmt.Errorf("warehouse: query invalid over the sources: %w", err)
	}
	translated := algebra.Substitute(q, w.comp.InverseMap())
	res := w.comp.Resolver()
	translated = algebra.Simplify(translated, res)
	if _, err := algebra.Attrs(translated, res); err != nil {
		return nil, fmt.Errorf("warehouse: translated query invalid over the warehouse: %w", err)
	}
	return translated, nil
}

// Answer translates the source query and evaluates it on the current
// warehouse state — no source access whatsoever.
//
// Deprecated: use AnswerContext (or the facade's context-first dwc.Answer)
// so cancellation and instrumentation propagate; Answer survives as a thin
// wrapper for external callers.
func (w *Warehouse) Answer(q algebra.Expr) (*relation.Relation, error) {
	r, _, err := w.AnswerContext(context.Background(), q)
	return r, err
}

// AnswerContext is Answer with cancellation and instrumentation: the
// context is checked at every operator boundary of the translated query's
// evaluation (a canceled context aborts with a wrapped context error), and
// the returned EvalStats reports the evaluation's operator counters and
// wall time. The stats are returned even when evaluation fails.
func (w *Warehouse) AnswerContext(ctx context.Context, q algebra.Expr) (*relation.Relation, *algebra.EvalStats, error) {
	ec := algebra.NewEvalContext(ctx)
	start := time.Now()
	t, err := w.TranslateQuery(q)
	if err != nil {
		return nil, nil, err
	}
	r, err := algebra.EvalCtx(ec, t, w)
	stats := ec.Stats()
	stats.Wall = time.Since(start)
	return r, &stats, err
}

// ReconstructBases applies W⁻¹ to the current warehouse state, returning
// every base relation's content keyed by name.
func (w *Warehouse) ReconstructBases() (map[string]*relation.Relation, error) {
	return w.comp.ReconstructCtx(nil, w)
}

// CheckQueryIndependence verifies Theorem 3.1 empirically: for every query
// and every state, Q(d) must equal Q̂(W(d)). It returns the first
// discrepancy as an error.
func (w *Warehouse) CheckQueryIndependence(queries []algebra.Expr, states []algebra.State) error {
	for qi, q := range queries {
		qHat, err := w.TranslateQuery(q)
		if err != nil {
			return fmt.Errorf("warehouse: query %d: %w", qi, err)
		}
		for si, st := range states {
			want, err := algebra.EvalCtx(nil, q, st)
			if err != nil {
				return err
			}
			ws, err := w.comp.MaterializeWarehouseCtx(nil, st)
			if err != nil {
				return err
			}
			got, err := algebra.EvalCtx(nil, qHat, ws)
			if err != nil {
				return err
			}
			if !got.Equal(want) {
				return fmt.Errorf("warehouse: query %d state %d: Q̂(W(d)) ≠ Q(d)\nQ:  %s\nQ̂:  %s\ngot  %d tuples, want %d",
					qi, si, q, qHat, got.Len(), want.Len())
			}
		}
	}
	return nil
}

// Witness is a pair of database states proving that a query cannot be
// answered from a set of materialized relations: the states agree on every
// materialized relation yet disagree on the query result.
type Witness struct {
	StateA, StateB int // indices into the corpus
	Query          algebra.Expr
}

// String describes the witness.
func (wn Witness) String() string {
	return fmt.Sprintf("states #%d and #%d have identical warehouse images but different answers to %s",
		wn.StateA, wn.StateB, wn.Query)
}

// FindAnswerabilityWitness searches the corpus for a proof that query q is
// NOT answerable from the given warehouse relations alone (Example 1.2's
// argument): two states with identical images under the materialized
// expressions but different query answers. The defs map names each
// materialized relation to its defining expression over D. It returns the
// witness and true when found.
func FindAnswerabilityWitness(q algebra.Expr, defs map[string]algebra.Expr, states []algebra.State) (Witness, bool, error) {
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	sort.Strings(names)
	type imaged struct {
		idx    int
		img    string
		answer string
	}
	var imgs []imaged
	for i, st := range states {
		var b strings.Builder
		for _, n := range names {
			r, err := algebra.EvalCtx(nil, defs[n], st)
			if err != nil {
				return Witness{}, false, err
			}
			b.WriteString(n)
			b.WriteByte('=')
			b.WriteString(r.Fingerprint())
			b.WriteByte('#')
		}
		ans, err := algebra.EvalCtx(nil, q, st)
		if err != nil {
			return Witness{}, false, err
		}
		imgs = append(imgs, imaged{i, b.String(), ans.Fingerprint()})
	}
	byImage := make(map[string]imaged)
	for _, im := range imgs {
		if prev, ok := byImage[im.img]; ok && prev.answer != im.answer {
			return Witness{StateA: prev.idx, StateB: im.idx, Query: q}, true, nil
		}
		if _, ok := byImage[im.img]; !ok {
			byImage[im.img] = im
		}
	}
	return Witness{}, false, nil
}
