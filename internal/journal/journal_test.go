package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

func testDB(t *testing.T) *catalog.Database {
	t.Helper()
	return workload.Figure1(false).DB
}

func saleIns(t *testing.T, db *catalog.Database, item, clerk string) *catalog.Update {
	t.Helper()
	return catalog.NewUpdate().MustInsert("Sale", db, relation.String_(item), relation.String_(clerk))
}

func TestRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Source: "sales", Seq: 1, Update: saleIns(t, db, "TV", "Mary")},
		{Source: "sales", Seq: 2, Update: catalog.NewUpdate().MustDelete("Sale", db, relation.String_("TV"), relation.String_("Mary"))},
		{Source: "company", Seq: 1, Update: catalog.NewUpdate().MustInsert("Emp", db, relation.String_("Mary"), relation.Int(23))},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	n, torn, err := Replay(path, db, func(r Record) error { got = append(got, r); return nil })
	if err != nil || torn {
		t.Fatalf("replay: n=%d torn=%v err=%v", n, torn, err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	for i, r := range got {
		if r.Source != recs[i].Source || r.Seq != recs[i].Seq {
			t.Errorf("record %d: got %s/%d", i, r.Source, r.Seq)
		}
		if r.Update.String() != recs[i].Update.String() {
			t.Errorf("record %d update:\ngot  %s\nwant %s", i, r.Update, recs[i].Update)
		}
	}
}

func TestMissingFileIsEmpty(t *testing.T) {
	n, torn, err := Replay(filepath.Join(t.TempDir(), "absent"), testDB(t), func(Record) error {
		t.Fatal("callback on empty journal")
		return nil
	})
	if n != 0 || torn || err != nil {
		t.Fatalf("n=%d torn=%v err=%v", n, torn, err)
	}
}

// TestTornTail: cutting bytes off the end (a crash mid-append) loses
// only the torn record; replay reports torn=true and reopening for
// append truncates the tail so new records land on a clean boundary.
func TestTornTail(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Append(Record{Source: "sales", Seq: i, Update: saleIns(t, db, "TV", "Mary")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	n, torn, err := Replay(path, db, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || !torn {
		t.Fatalf("n=%d torn=%v, want 2 true", n, torn)
	}
	// Reopen + append: the torn tail is gone, the new record follows
	// the two survivors.
	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{Source: "sales", Seq: 4, Update: saleIns(t, db, "PC", "John")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	var seqs []uint64
	n, torn, err = Replay(path, db, func(r Record) error { seqs = append(seqs, r.Seq); return nil })
	if err != nil || torn {
		t.Fatalf("after reopen: torn=%v err=%v", torn, err)
	}
	if n != 3 || seqs[2] != 4 {
		t.Fatalf("after reopen: n=%d seqs=%v", n, seqs)
	}
}

// TestCorruptMiddle: a bit flip in an interior record is corruption,
// not a torn tail — replay must fail with ErrCorrupt.
func TestCorruptMiddle(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := w.Append(Record{Source: "sales", Seq: i, Update: saleIns(t, db, "TV", "Mary")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Replay(path, db, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle: err=%v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("GARBAGE DATA"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(path, testDB(t), func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with bad magic: err=%v, want ErrCorrupt", err)
	}
}

func TestReset(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Source: "sales", Seq: 1, Update: saleIns(t, db, "TV", "Mary")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Source: "sales", Seq: 2, Update: saleIns(t, db, "PC", "John")}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	n, torn, err := Replay(path, db, func(r Record) error { seqs = append(seqs, r.Seq); return nil })
	if err != nil || torn {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if n != 1 || seqs[0] != 2 {
		t.Fatalf("after reset: n=%d seqs=%v", n, seqs)
	}
}

// TestCrashPointInAppend: an injected crash before the write leaves the
// journal exactly as it was — the record is not half-written.
func TestCrashPointInAppend(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Source: "sales", Seq: 1, Update: saleIns(t, db, "TV", "Mary")}); err != nil {
		t.Fatal(err)
	}
	chaos.Arm("journal.append", 1, errors.New("injected crash"))
	defer chaos.Reset()
	if err := w.Append(Record{Source: "sales", Seq: 2, Update: saleIns(t, db, "PC", "John")}); err == nil {
		t.Fatal("armed append did not fail")
	}
	chaos.Reset()
	n, torn, err := Replay(path, db, func(Record) error { return nil })
	if err != nil || torn {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if n != 1 {
		t.Fatalf("crashed append left %d records, want 1", n)
	}
}

func TestEmptyUpdateRoundTrips(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Source: "sales", Seq: 1, Update: catalog.NewUpdate()}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	n, _, err := Replay(path, db, func(r Record) error {
		if !r.Update.IsEmpty() {
			t.Errorf("empty update came back as %s", r.Update)
		}
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
