// Package journal is the integrator's write-ahead log. Every source
// notification is appended — length-prefixed, CRC32-checksummed, and
// fsync'd — before its refresh runs, so a crashed integrator recovers
// by loading the latest snapshot and replaying the journal suffix past
// the snapshot's per-source watermarks. Recovery therefore needs the
// warehouse's own disk state and the reported updates only, never a
// source connection: it is the paper's update-independence property
// (w' = W(u(W⁻¹(w))), Definition 4.1) made crash-safe.
//
// On-disk layout:
//
//	magic "DWJL" (4 bytes)
//	repeated records:
//	    uint32 payload length (big endian)
//	    uint32 CRC32/IEEE of payload
//	    payload: gob(wireRecord{Source, Seq, Epoch, LSN, Ins, Del})
//
// A torn tail — a record cut short by a crash mid-append — is detected
// by the length prefix and tolerated: replay stops cleanly before it
// and the next append truncates it away. A checksum mismatch or an
// implausible length earlier in the file means real corruption and
// fails replay with ErrCorrupt.
//
// The same frame format doubles as the replication wire format: a
// leader ships journal records to followers as a bare sequence of
// frames (no magic), read incrementally by StreamReader. Epoch and LSN
// are the replication coordinates — the leadership term a record was
// committed under and its position in the leader's log; both are zero
// on journals written before replication existed, which gob decodes
// compatibly in both directions.
package journal

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/snapshot"
	"dwcomplement/internal/trace"
)

// magic opens every journal file.
var magic = [4]byte{'D', 'W', 'J', 'L'}

// maxRecord bounds one record's payload; longer prefixes are treated as
// corruption rather than honored with a giant allocation.
const maxRecord = 1 << 28

// ErrCorrupt reports a record that is present in full but fails its
// checksum (or carries an implausible length) — unlike a torn tail,
// this means the file cannot be trusted past that point.
var ErrCorrupt = errors.New("journal: corrupt record")

// Record is one journaled notification: the reporting source, its
// per-source sequence number, and the update it reported. Epoch and
// LSN position the record in a replicated deployment — the leadership
// term it was committed under and its slot in the leader's replication
// log; both stay zero on standalone servers and on journals written
// before replication existed.
type Record struct {
	Source string
	Seq    uint64
	Epoch  uint64
	LSN    uint64
	Update *catalog.Update
}

// wireRecord is the gob shape of a Record; relations ride on the
// snapshot package's wire codec so values round-trip identically in
// both durability formats. Epoch/LSN were added for replication: gob
// decodes records missing them to zero and ignores them when a newer
// file meets an older reader, so the format needs no version bump.
type wireRecord struct {
	Source string
	Seq    uint64
	Epoch  uint64
	LSN    uint64
	Ins    map[string]snapshot.WireRelation
	Del    map[string]snapshot.WireRelation
}

// ToWireUpdate serializes an update's insert and delete sets on the
// snapshot package's relation codec. It is the single update codec of
// the repo: the journal's records and the remote reporting protocol
// (internal/remote) both ride on it, so an update round-trips
// identically whether it crossed a disk or a network boundary.
func ToWireUpdate(u *catalog.Update) (ins, del map[string]snapshot.WireRelation) {
	for _, name := range u.Touched() {
		if r := u.Inserts(name); r != nil && !r.IsEmpty() {
			if ins == nil {
				ins = make(map[string]snapshot.WireRelation)
			}
			ins[name] = snapshot.ToWireRelation(r)
		}
		if r := u.Deletes(name); r != nil && !r.IsEmpty() {
			if del == nil {
				del = make(map[string]snapshot.WireRelation)
			}
			del[name] = snapshot.ToWireRelation(r)
		}
	}
	return ins, del
}

// FromWireUpdate restores an update from its wire form, re-aligning
// each row to the schema's attribute order and rejecting references to
// relations the database does not declare.
func FromWireUpdate(db *catalog.Database, ins, del map[string]snapshot.WireRelation) (*catalog.Update, error) {
	u := catalog.NewUpdate()
	restore := func(m map[string]snapshot.WireRelation, schedule func(string, relation.Tuple) error) error {
		for name, wr := range m {
			sc, ok := db.Schema(name)
			if !ok {
				return fmt.Errorf("journal: record references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
			}
			rel, err := snapshot.FromWireRelation(wr)
			if err != nil {
				return fmt.Errorf("journal: relation %s: %w", name, err)
			}
			attrs := sc.AttrNames()
			for t := range rel.All() {
				aligned := make(relation.Tuple, len(attrs))
				for i, a := range attrs {
					p, ok := rel.Pos(a)
					if !ok {
						return fmt.Errorf("journal: relation %s row missing attribute %q", name, a)
					}
					aligned[i] = t[p]
				}
				if err := schedule(name, aligned); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := restore(ins, func(name string, t relation.Tuple) error { return u.Insert(name, db, t) }); err != nil {
		return nil, err
	}
	if err := restore(del, func(name string, t relation.Tuple) error { return u.Delete(name, db, t) }); err != nil {
		return nil, err
	}
	return u, nil
}

func toWire(rec Record) wireRecord {
	w := wireRecord{Source: rec.Source, Seq: rec.Seq, Epoch: rec.Epoch, LSN: rec.LSN}
	w.Ins, w.Del = ToWireUpdate(rec.Update)
	return w
}

func fromWire(w wireRecord, db *catalog.Database) (Record, error) {
	u, err := FromWireUpdate(db, w.Ins, w.Del)
	if err != nil {
		return Record{}, err
	}
	return Record{Source: w.Source, Seq: w.Seq, Epoch: w.Epoch, LSN: w.LSN, Update: u}, nil
}

// EncodeRecord frames one record onto w exactly as Append does on disk:
// length prefix, CRC32, gob payload. It is the encode half of the
// replication stream — a leader frames log entries onto an HTTP
// response body and a follower decodes them with StreamReader, so a
// record crosses the network bit-identical to how it crosses a crash.
func EncodeRecord(w io.Writer, rec Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(toWire(rec)); err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if payload.Len() > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", payload.Len())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Writer appends records to a journal file with write-ahead semantics:
// Append returns only after the record (and everything before it) is
// fsync'd, so a crash after Append cannot lose the record. Safe for
// concurrent use.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (or creates) the journal at path for appending. An
// existing file keeps its records; a torn tail from a previous crash is
// truncated away so new appends start on a clean record boundary.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := scan(f, nil, nil)
	if err != nil && !errors.Is(err, ErrTorn) {
		f.Close()
		return nil, err
	}
	if errors.Is(err, ErrTorn) {
		if terr := f.Truncate(end); terr != nil {
			f.Close()
			return nil, terr
		}
	}
	// Position at the clean boundary before writing anything (scan left
	// the offset wherever reading stopped).
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if end == 0 {
		// Fresh (or empty) file: write the magic.
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Writer{f: f, path: path}, nil
}

// Append journals one record: encode, frame, write, fsync. The chaos
// points model a crash before the write ("journal.append") and between
// write and sync ("journal.sync").
func (w *Writer) Append(rec Record) error {
	return w.AppendContext(context.Background(), rec)
}

// AppendContext is Append with lineage: when ctx carries a recording
// trace span, the append runs under a "journal.append" child span
// annotated with the framed record size and the fsync's share of the
// wall time — the durability hop of a report's end-to-end trace.
func (w *Writer) AppendContext(ctx context.Context, rec Record) error {
	_, sp := trace.StartSpan(ctx, "journal.append")
	defer sp.End()
	sp.SetAttr("source", rec.Source)
	sp.SetAttrInt("seq", int64(rec.Seq))
	if err := chaos.Point("journal.append"); err != nil {
		return err
	}
	var frame bytes.Buffer
	if err := EncodeRecord(&frame, rec); err != nil {
		return err
	}
	sp.SetAttrInt("bytes", int64(frame.Len()))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer is closed")
	}
	if _, err := w.f.Write(frame.Bytes()); err != nil {
		return err
	}
	if err := chaos.Point("journal.sync"); err != nil {
		return err
	}
	var syncStart time.Time
	if sp.Recording() {
		syncStart = time.Now()
	}
	err := w.f.Sync()
	if sp.Recording() {
		sp.SetAttrInt("fsyncMicros", time.Since(syncStart).Microseconds())
	}
	return err
}

// Reset truncates the journal to empty (magic only). Called after a
// checkpoint snapshot has been durably renamed into place: everything
// the journal held is now reflected in the snapshot and its watermarks,
// so the journal can restart from zero length instead of growing
// forever.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer is closed")
	}
	if err := w.f.Truncate(int64(len(magic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(magic)), io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Close syncs and closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ErrTorn reports a record cut short mid-frame: the benign truncation
// signature of a crash during append, or of a network connection cut
// during a replication stream. The bytes before it are trustworthy —
// recovery resumes from the last complete record, it never applies a
// partial one. (Replay converts a torn tail into a (count, torn=true,
// nil) result and Open truncates it away; StreamReader surfaces it to
// the follower, which resumes from its durable watermark.)
var ErrTorn = errors.New("journal: torn record")

// readFrame reads one length-prefixed, checksummed frame and returns
// its payload: io.EOF at a clean record boundary, ErrTorn when the
// frame is cut short, ErrCorrupt on a checksum or length violation.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF // clean boundary
		}
		return nil, fmt.Errorf("%w: partial length prefix", ErrTorn)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	wantCRC := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxRecord {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: record cut short", ErrTorn)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// decodeRecord decodes one frame payload against db.
func decodeRecord(payload []byte, db *catalog.Database) (Record, error) {
	var wrec wireRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wrec); err != nil {
		return Record{}, fmt.Errorf("%w: undecodable record: %v", ErrCorrupt, err)
	}
	return fromWire(wrec, db)
}

// StreamReader decodes a bare sequence of journal frames (no magic) one
// record at a time — the decode half of the replication stream. Next
// returns io.EOF at a clean frame boundary, an error wrapping ErrTorn
// when the stream was cut mid-record (every record returned before it
// is complete and checksum-valid — a follower applies those and
// re-requests from its watermark), and ErrCorrupt on a checksum
// mismatch.
type StreamReader struct {
	r  io.Reader
	db *catalog.Database
}

// NewStreamReader reads journal frames from r, decoding updates against
// db.
func NewStreamReader(r io.Reader, db *catalog.Database) *StreamReader {
	return &StreamReader{r: r, db: db}
}

// Next returns the next complete record, io.EOF at a clean end of
// stream, or ErrTorn/ErrCorrupt.
func (s *StreamReader) Next() (Record, error) {
	payload, err := readFrame(s.r)
	if err != nil {
		return Record{}, err
	}
	return decodeRecord(payload, s.db)
}

// scan walks the journal from the start, calling fn for each complete,
// checksum-valid record (fn may be nil). It returns the offset just
// past the last valid record; a torn tail is reported as ErrTorn with
// the offset still pointing at the clean boundary.
func scan(f io.ReadSeeker, db *catalog.Database, fn func(Record) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := newCountingReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil // empty file: fresh journal
		}
		return 0, ErrTorn
	}
	if mg != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	end := r.n
	for {
		payload, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return end, nil // clean end of journal
			}
			if errors.Is(err, ErrTorn) {
				return end, ErrTorn // cut short by a crash
			}
			return end, fmt.Errorf("%w at offset %d", err, end)
		}
		if fn != nil {
			rec, err := decodeRecord(payload, db)
			if err != nil {
				return end, fmt.Errorf("%w (offset %d)", err, end)
			}
			if err := fn(rec); err != nil {
				return end, err
			}
		}
		end = r.n
	}
}

// countingReader tracks the absolute offset consumed so far.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Replay reads the journal at path and calls fn for every record, in
// append order. A missing file is an empty journal (fresh deployment).
// A torn tail is tolerated and reported through torn; corruption before
// the tail fails with an error wrapping ErrCorrupt. If fn returns an
// error, replay stops and returns it.
func Replay(path string, db *catalog.Database, fn func(Record) error) (n int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	count := 0
	wrapped := func(rec Record) error {
		count++
		return fn(rec)
	}
	_, err = scan(f, db, wrapped)
	if errors.Is(err, ErrTorn) {
		return count, true, nil
	}
	return count, false, err
}
