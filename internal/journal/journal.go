// Package journal is the integrator's write-ahead log. Every source
// notification is appended — length-prefixed, CRC32-checksummed, and
// fsync'd — before its refresh runs, so a crashed integrator recovers
// by loading the latest snapshot and replaying the journal suffix past
// the snapshot's per-source watermarks. Recovery therefore needs the
// warehouse's own disk state and the reported updates only, never a
// source connection: it is the paper's update-independence property
// (w' = W(u(W⁻¹(w))), Definition 4.1) made crash-safe.
//
// On-disk layout:
//
//	magic "DWJL" (4 bytes)
//	repeated records:
//	    uint32 payload length (big endian)
//	    uint32 CRC32/IEEE of payload
//	    payload: gob(wireRecord{Source, Seq, Ins, Del})
//
// A torn tail — a record cut short by a crash mid-append — is detected
// by the length prefix and tolerated: replay stops cleanly before it
// and the next append truncates it away. A checksum mismatch or an
// implausible length earlier in the file means real corruption and
// fails replay with ErrCorrupt.
package journal

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/snapshot"
	"dwcomplement/internal/trace"
)

// magic opens every journal file.
var magic = [4]byte{'D', 'W', 'J', 'L'}

// maxRecord bounds one record's payload; longer prefixes are treated as
// corruption rather than honored with a giant allocation.
const maxRecord = 1 << 28

// ErrCorrupt reports a record that is present in full but fails its
// checksum (or carries an implausible length) — unlike a torn tail,
// this means the file cannot be trusted past that point.
var ErrCorrupt = errors.New("journal: corrupt record")

// Record is one journaled notification: the reporting source, its
// per-source sequence number, and the update it reported.
type Record struct {
	Source string
	Seq    uint64
	Update *catalog.Update
}

// wireRecord is the gob shape of a Record; relations ride on the
// snapshot package's wire codec so values round-trip identically in
// both durability formats.
type wireRecord struct {
	Source string
	Seq    uint64
	Ins    map[string]snapshot.WireRelation
	Del    map[string]snapshot.WireRelation
}

// ToWireUpdate serializes an update's insert and delete sets on the
// snapshot package's relation codec. It is the single update codec of
// the repo: the journal's records and the remote reporting protocol
// (internal/remote) both ride on it, so an update round-trips
// identically whether it crossed a disk or a network boundary.
func ToWireUpdate(u *catalog.Update) (ins, del map[string]snapshot.WireRelation) {
	for _, name := range u.Touched() {
		if r := u.Inserts(name); r != nil && !r.IsEmpty() {
			if ins == nil {
				ins = make(map[string]snapshot.WireRelation)
			}
			ins[name] = snapshot.ToWireRelation(r)
		}
		if r := u.Deletes(name); r != nil && !r.IsEmpty() {
			if del == nil {
				del = make(map[string]snapshot.WireRelation)
			}
			del[name] = snapshot.ToWireRelation(r)
		}
	}
	return ins, del
}

// FromWireUpdate restores an update from its wire form, re-aligning
// each row to the schema's attribute order and rejecting references to
// relations the database does not declare.
func FromWireUpdate(db *catalog.Database, ins, del map[string]snapshot.WireRelation) (*catalog.Update, error) {
	u := catalog.NewUpdate()
	restore := func(m map[string]snapshot.WireRelation, schedule func(string, relation.Tuple) error) error {
		for name, wr := range m {
			sc, ok := db.Schema(name)
			if !ok {
				return fmt.Errorf("journal: record references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
			}
			rel, err := snapshot.FromWireRelation(wr)
			if err != nil {
				return fmt.Errorf("journal: relation %s: %w", name, err)
			}
			attrs := sc.AttrNames()
			for t := range rel.All() {
				aligned := make(relation.Tuple, len(attrs))
				for i, a := range attrs {
					p, ok := rel.Pos(a)
					if !ok {
						return fmt.Errorf("journal: relation %s row missing attribute %q", name, a)
					}
					aligned[i] = t[p]
				}
				if err := schedule(name, aligned); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := restore(ins, func(name string, t relation.Tuple) error { return u.Insert(name, db, t) }); err != nil {
		return nil, err
	}
	if err := restore(del, func(name string, t relation.Tuple) error { return u.Delete(name, db, t) }); err != nil {
		return nil, err
	}
	return u, nil
}

func toWire(rec Record) wireRecord {
	w := wireRecord{Source: rec.Source, Seq: rec.Seq}
	w.Ins, w.Del = ToWireUpdate(rec.Update)
	return w
}

func fromWire(w wireRecord, db *catalog.Database) (Record, error) {
	u, err := FromWireUpdate(db, w.Ins, w.Del)
	if err != nil {
		return Record{}, err
	}
	return Record{Source: w.Source, Seq: w.Seq, Update: u}, nil
}

// Writer appends records to a journal file with write-ahead semantics:
// Append returns only after the record (and everything before it) is
// fsync'd, so a crash after Append cannot lose the record. Safe for
// concurrent use.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (or creates) the journal at path for appending. An
// existing file keeps its records; a torn tail from a previous crash is
// truncated away so new appends start on a clean record boundary.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := scan(f, nil, nil)
	if err != nil && !errors.Is(err, errTorn) {
		f.Close()
		return nil, err
	}
	if errors.Is(err, errTorn) {
		if terr := f.Truncate(end); terr != nil {
			f.Close()
			return nil, terr
		}
	}
	// Position at the clean boundary before writing anything (scan left
	// the offset wherever reading stopped).
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if end == 0 {
		// Fresh (or empty) file: write the magic.
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Writer{f: f, path: path}, nil
}

// Append journals one record: encode, frame, write, fsync. The chaos
// points model a crash before the write ("journal.append") and between
// write and sync ("journal.sync").
func (w *Writer) Append(rec Record) error {
	return w.AppendContext(context.Background(), rec)
}

// AppendContext is Append with lineage: when ctx carries a recording
// trace span, the append runs under a "journal.append" child span
// annotated with the framed record size and the fsync's share of the
// wall time — the durability hop of a report's end-to-end trace.
func (w *Writer) AppendContext(ctx context.Context, rec Record) error {
	_, sp := trace.StartSpan(ctx, "journal.append")
	defer sp.End()
	sp.SetAttr("source", rec.Source)
	sp.SetAttrInt("seq", int64(rec.Seq))
	if err := chaos.Point("journal.append"); err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(toWire(rec)); err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if payload.Len() > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", payload.Len())
	}
	sp.SetAttrInt("bytes", int64(payload.Len()+8))
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer is closed")
	}
	if _, err := w.f.Write(append(hdr[:], payload.Bytes()...)); err != nil {
		return err
	}
	if err := chaos.Point("journal.sync"); err != nil {
		return err
	}
	var syncStart time.Time
	if sp.Recording() {
		syncStart = time.Now()
	}
	err := w.f.Sync()
	if sp.Recording() {
		sp.SetAttrInt("fsyncMicros", time.Since(syncStart).Microseconds())
	}
	return err
}

// Reset truncates the journal to empty (magic only). Called after a
// checkpoint snapshot has been durably renamed into place: everything
// the journal held is now reflected in the snapshot and its watermarks,
// so the journal can restart from zero length instead of growing
// forever.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer is closed")
	}
	if err := w.f.Truncate(int64(len(magic))); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(len(magic)), io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Close syncs and closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// errTorn is scan's internal signal for a torn tail; Replay converts it
// into a (count, torn=true, nil) result, Open truncates it away.
var errTorn = errors.New("journal: torn tail")

// scan walks the journal from the start, calling fn for each complete,
// checksum-valid record (fn may be nil). It returns the offset just
// past the last valid record; a torn tail is reported as errTorn with
// the offset still pointing at the clean boundary.
func scan(f io.ReadSeeker, db *catalog.Database, fn func(Record) error) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := newCountingReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil // empty file: fresh journal
		}
		return 0, errTorn
	}
	if mg != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	end := r.n
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return end, nil // clean end of journal
			}
			return end, errTorn // partial length prefix
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if length > maxRecord {
			return end, fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, length, end)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return end, errTorn // record cut short by a crash
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return end, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, end)
		}
		if fn != nil {
			var wrec wireRecord
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wrec); err != nil {
				return end, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, end, err)
			}
			rec, err := fromWire(wrec, db)
			if err != nil {
				return end, err
			}
			if err := fn(rec); err != nil {
				return end, err
			}
		}
		end = r.n
	}
}

// countingReader tracks the absolute offset consumed so far.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Replay reads the journal at path and calls fn for every record, in
// append order. A missing file is an empty journal (fresh deployment).
// A torn tail is tolerated and reported through torn; corruption before
// the tail fails with an error wrapping ErrCorrupt. If fn returns an
// error, replay stops and returns it.
func Replay(path string, db *catalog.Database, fn func(Record) error) (n int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	count := 0
	wrapped := func(rec Record) error {
		count++
		return fn(rec)
	}
	_, err = scan(f, db, wrapped)
	if errors.Is(err, errTorn) {
		return count, true, nil
	}
	return count, false, err
}
