package source

import (
	"math/rand"
	"sync"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

// figure1Env builds the two-source deployment of Figure 1: the Sales
// database owns Sale, the Company database owns Emp.
func figure1Env(t *testing.T) (*Environment, workload.Scenario) {
	t.Helper()
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := NewEnvironment(comp, map[string][]string{
		"sales":   {"Sale"},
		"company": {"Emp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, sc
}

func TestFigure1EndToEnd(t *testing.T) {
	env, sc := figure1Env(t)
	sales, _ := env.Source("sales")
	company, _ := env.Source("company")

	// Load the paper's initial data through the sources themselves.
	for _, row := range [][2]string{{"TV set", "Mary"}, {"VCR", "Mary"}, {"PC", "John"}} {
		u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_(row[0]), relation.String_(row[1]))
		if _, err := sales.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range []struct {
		clerk string
		age   int64
	}{{"Mary", 23}, {"John", 25}, {"Paula", 32}} {
		u := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_(row.clerk), relation.Int(row.age))
		if _, err := company.Apply(u); err != nil {
			t.Fatal(err)
		}
	}

	w := env.Integrator.Warehouse()
	sold, _ := w.Relation("Sold")
	if sold.Len() != 3 {
		t.Fatalf("Sold = %v", sold)
	}

	// The paper's update: "insert into Sale the tuple ⟨Computer, Paula⟩".
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_("Computer"), relation.String_("Paula"))
	if _, err := sales.Apply(u); err != nil {
		t.Fatal(err)
	}
	sold, _ = w.Relation("Sold")
	if sold.Len() != 4 || !sold.Contains(relation.Tuple{relation.String_("Computer"), relation.String_("Paula"), relation.Int(32)}) {
		t.Errorf("Sold after the paper's update = %v", sold)
	}

	// The whole run never queried a source.
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Errorf("integrator issued %d source queries", n)
	}
	// And the warehouse matches a fresh materialization of the combined
	// source state.
	combined, err := env.CombinedState()
	if err != nil {
		t.Fatal(err)
	}
	want, err := env.Integrator.w.Complement().MaterializeWarehouse(combined)
	if err != nil {
		t.Fatal(err)
	}
	for name, wantRel := range want {
		got, _ := w.Relation(name)
		if !got.Equal(wantRel) {
			t.Errorf("warehouse %s diverged from source state", name)
		}
	}
}

func TestSealedSourceRejectsQueries(t *testing.T) {
	env, _ := figure1Env(t)
	sales, _ := env.Source("sales")
	if _, err := sales.Query(algebra.NewBase("Sale")); err == nil {
		t.Error("sealed source answered a query")
	}
	if sales.QueryAttempts() != 1 {
		t.Errorf("attempts = %d", sales.QueryAttempts())
	}
}

func TestUnsealedSourceAnswers(t *testing.T) {
	sc := workload.Figure1(false)
	s, err := NewSource("open", sc.DB, false, "Sale")
	if err != nil {
		t.Fatal(err)
	}
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_("TV"), relation.String_("Mary"))
	if _, err := s.Apply(u); err != nil {
		t.Fatal(err)
	}
	r, err := s.Query(algebra.NewBase("Sale"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("query answer = %v", r)
	}
	if s.QueryAttempts() != 1 {
		t.Errorf("attempts = %d", s.QueryAttempts())
	}
}

func TestSourceOwnership(t *testing.T) {
	env, sc := figure1Env(t)
	sales, _ := env.Source("sales")
	u := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_("Eve"), relation.Int(30))
	if _, err := sales.Apply(u); err == nil {
		t.Error("source updated a foreign relation")
	}
}

func TestSourceLocalConstraints(t *testing.T) {
	// A source owning Emp enforces Emp's key locally.
	sc := workload.Figure1(false)
	s, err := NewSource("company", sc.DB, true, "Emp")
	if err != nil {
		t.Fatal(err)
	}
	ok := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_("Mary"), relation.Int(23))
	if _, err := s.Apply(ok); err != nil {
		t.Fatal(err)
	}
	dup := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_("Mary"), relation.Int(99))
	if _, err := s.Apply(dup); err == nil {
		t.Error("key violation accepted by source")
	}
	// Cross-source INDs are not checked locally: a Sale-owning source
	// accepts clerks unknown to its (empty) local Emp.
	ref := workload.Figure1(true)
	salesOnly, err := NewSource("sales", ref.DB, true, "Sale")
	if err != nil {
		t.Fatal(err)
	}
	ins := catalog.NewUpdate().MustInsert("Sale", ref.DB, relation.String_("TV"), relation.String_("Mary"))
	if _, err := salesOnly.Apply(ins); err != nil {
		t.Errorf("cross-source IND enforced locally: %v", err)
	}
	// But a source owning both sides enforces the IND.
	both, err := NewSource("all", ref.DB, true, "Sale", "Emp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := both.Apply(ins); err == nil {
		t.Error("local IND violation accepted")
	}
}

func TestEnvironmentValidation(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	if _, err := NewEnvironment(comp, map[string][]string{"a": {"Sale"}}); err == nil {
		t.Error("uncovered relation accepted")
	}
	if _, err := NewEnvironment(comp, map[string][]string{
		"a": {"Sale", "Emp"}, "b": {"Emp"},
	}); err == nil {
		t.Error("doubly owned relation accepted")
	}
}

func TestConcurrentSources(t *testing.T) {
	// Two sources apply interleaved transaction streams from separate
	// goroutines; the integrator must serialize them and end exactly
	// consistent with the combined source state.
	env, sc := figure1Env(t)
	sales, _ := env.Source("sales")
	company, _ := env.Source("company")

	items := []string{"TV", "VCR", "PC", "Radio", "Phone"}
	clerks := []string{"Mary", "John", "Paula", "Zoe", "Max", "Ann"}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 60; i++ {
			u := catalog.NewUpdate()
			if rng.Intn(3) == 0 {
				u.MustDelete("Sale", sc.DB,
					relation.String_(items[rng.Intn(len(items))]),
					relation.String_(clerks[rng.Intn(len(clerks))]))
			} else {
				u.MustInsert("Sale", sc.DB,
					relation.String_(items[rng.Intn(len(items))]),
					relation.String_(clerks[rng.Intn(len(clerks))]))
			}
			if _, err := sales.Apply(u); err != nil {
				t.Errorf("sales: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 60; i++ {
			u := catalog.NewUpdate()
			c := clerks[rng.Intn(len(clerks))]
			age := relation.Int(int64(20 + rng.Intn(40)))
			if rng.Intn(3) == 0 {
				u.MustDelete("Emp", sc.DB, relation.String_(c), age)
			} else {
				u.MustInsert("Emp", sc.DB, relation.String_(c), age)
			}
			if _, err := company.Apply(u); err != nil {
				// Key violations are legitimate rejections; skip them.
				continue
			}
		}
	}()
	wg.Wait()

	if !env.Integrator.Flush() {
		t.Fatal("integrator left notifications pending")
	}
	combined, err := env.CombinedState()
	if err != nil {
		t.Fatal(err)
	}
	want, err := env.Integrator.w.Complement().MaterializeWarehouse(combined)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Integrator.Warehouse()
	for name, wantRel := range want {
		got, _ := w.Relation(name)
		if !got.Equal(wantRel) {
			t.Errorf("after concurrent run, %s diverged:\ngot  %v\nwant %v", name, got, wantRel)
		}
	}
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Errorf("integrator issued %d source queries", n)
	}
	refreshes, _ := env.Integrator.Stats()
	if refreshes == 0 {
		t.Error("no refreshes recorded")
	}
}
