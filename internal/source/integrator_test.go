package source

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/journal"
	"dwcomplement/internal/obs"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/snapshot"
	"dwcomplement/internal/workload"
)

// openJournal opens a journal writer for tests.
func openJournal(t *testing.T, path string) (*journal.Writer, error) {
	t.Helper()
	return journal.Open(path)
}

// saleInsert builds the Sale-insert update the hardening tests deliver.
func saleInsert(t *testing.T, sc workload.Scenario, item, clerk string) *catalog.Update {
	t.Helper()
	return catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_(item), relation.String_(clerk))
}

// detachedIntegrator builds an integrator with no sources wired, so tests
// can hand-craft notification schedules (duplicates, gaps, reorderings).
func detachedIntegrator(t *testing.T) (*Integrator, workload.Scenario) {
	t.Helper()
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := NewEnvironment(comp, map[string][]string{"all": {"Sale", "Emp"}})
	if err != nil {
		t.Fatal(err)
	}
	return env.Integrator, sc
}

// TestDuplicateDoesNotWedgeDrain is the regression test for the PR-3
// integrator wedge: delivering {1, 2, dup(1), 3} must apply all three
// distinct updates. Before the fix, the stale duplicate sorted to the
// head of the pending queue and blocked the drain loop forever.
func TestDuplicateDoesNotWedgeDrain(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	mk := func(seq uint64, item string) Notification {
		return Notification{Source: "all", Seq: seq, Update: saleInsert(t, sc, item, "Mary")}
	}
	n1, n2, n3 := mk(1, "TV set"), mk(2, "VCR"), mk(3, "PC")

	integ.Receive(n1)
	integ.Receive(n2)
	integ.Receive(n1) // transport re-delivery of an already-applied report
	integ.Receive(n3)

	if !integ.Flush() {
		t.Fatalf("integrator wedged: pending after {1,2,dup(1),3}; gaps=%v", integ.Gaps())
	}
	if refreshes, _ := integ.Stats(); refreshes != 3 {
		t.Fatalf("refreshes = %d, want 3", refreshes)
	}
	if dups, _ := integ.DeliveryStats(); dups != 1 {
		t.Fatalf("duplicates dropped = %d, want 1", dups)
	}
	bases, err := integ.Warehouse().ReconstructBases()
	if err != nil {
		t.Fatal(err)
	}
	if sale := bases["Sale"]; sale.Len() != 3 {
		t.Fatalf("reconstructed Sale has %d tuples, want 3", sale.Len())
	}
}

// TestDuplicateBufferedBehindGap: a duplicate of a buffered (not yet
// applied) notification is also dropped, and the gap still closes.
func TestDuplicateBufferedBehindGap(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	mk := func(seq uint64, item string) Notification {
		return Notification{Source: "all", Seq: seq, Update: saleInsert(t, sc, item, "Mary")}
	}
	integ.Receive(mk(2, "VCR"))
	integ.Receive(mk(2, "VCR")) // duplicate while gapped
	if gaps := integ.Gaps(); len(gaps) != 1 || gaps[0].Expected != 1 || gaps[0].Pending != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
	integ.Receive(mk(1, "TV set"))
	if !integ.Flush() {
		t.Fatal("gap did not close")
	}
	if dups, _ := integ.DeliveryStats(); dups != 1 {
		t.Fatalf("duplicates = %d, want 1", dups)
	}
}

// TestBackpressure: a full pending buffer refuses further notifications
// with ErrBackpressure instead of queueing without bound, and the
// refused reports are recoverable via resync once the gap closes.
func TestBackpressure(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	integ.SetMaxPending(2)
	mk := func(seq uint64, item string) Notification {
		return Notification{Source: "all", Seq: seq, Update: saleInsert(t, sc, item, "Mary")}
	}
	// Seq 1 missing: everything buffers.
	if err := integ.Offer(mk(2, "VCR")); err != nil {
		t.Fatal(err)
	}
	if err := integ.Offer(mk(3, "PC")); err != nil {
		t.Fatal(err)
	}
	err := integ.Offer(mk(4, "Computer"))
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("third buffered offer: err=%v, want ErrBackpressure", err)
	}
	// Closing the gap drains the buffer; the refused report can then be
	// offered again.
	if err := integ.Offer(mk(1, "TV set")); err != nil {
		t.Fatal(err)
	}
	if err := integ.Offer(mk(4, "Computer")); err != nil {
		t.Fatal(err)
	}
	if !integ.Flush() {
		t.Fatal("pending after backpressure recovery")
	}
	if refreshes, _ := integ.Stats(); refreshes != 4 {
		t.Fatalf("refreshes = %d, want 4", refreshes)
	}
}

// TestGapResyncViaReportingChannel drops a notification in transit and
// asserts the resync hook recovers it through Source.Resend — with the
// sealed sources' ad-hoc query counter untouched.
func TestGapResyncViaReportingChannel(t *testing.T) {
	env, sc := figure1Env(t)
	integ := env.Integrator
	sales, _ := env.Source("sales")

	// Intercept delivery so we can drop seq 2 in transit.
	var dropSeq uint64 = 2
	sales.OnUpdate(func(n Notification) {
		if n.Seq == dropSeq {
			return // lost on the wire
		}
		integ.Receive(n)
	})

	for _, item := range []string{"TV set", "VCR", "PC"} {
		if _, err := sales.Apply(saleInsert(t, sc, item, "Mary")); err != nil {
			t.Fatal(err)
		}
	}
	gaps := integ.Gaps()
	if len(gaps) != 1 || gaps[0].Source != "sales" || gaps[0].Expected != 2 {
		t.Fatalf("gaps = %v, want one gap at sales seq 2", gaps)
	}
	var gapErr error = gaps[0]
	if gapErr.Error() == "" {
		t.Fatal("GapError has empty message")
	}

	// Resync re-requests from the reporting channel; stop dropping first.
	dropSeq = 0
	due, err := integ.Resync()
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 1 {
		t.Fatalf("resync acted on %d gaps, want 1", len(due))
	}
	if !integ.Flush() {
		t.Fatal("gap persists after resync")
	}
	if refreshes, _ := integ.Stats(); refreshes != 3 {
		t.Fatalf("refreshes = %d, want 3", refreshes)
	}
	// The whole recovery never touched the query interface.
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Fatalf("resync issued %d ad-hoc source queries", n)
	}
}

// TestGapTimeoutGatesResync: gaps younger than the timeout are reported
// by Gaps but skipped by Resync.
func TestGapTimeoutGatesResync(t *testing.T) {
	env, sc := figure1Env(t)
	integ := env.Integrator
	integ.SetGapTimeout(time.Hour)
	sales, _ := env.Source("sales")
	sales.OnUpdate(func(n Notification) {
		if n.Seq != 1 {
			integ.Receive(n)
		}
	})
	for _, item := range []string{"TV set", "VCR"} {
		if _, err := sales.Apply(saleInsert(t, sc, item, "Mary")); err != nil {
			t.Fatal(err)
		}
	}
	if len(integ.Gaps()) != 1 {
		t.Fatalf("gaps = %v", integ.Gaps())
	}
	due, err := integ.Resync()
	if err != nil {
		t.Fatal(err)
	}
	if len(due) != 0 {
		t.Fatalf("resync acted on a gap younger than the timeout: %v", due)
	}
}

// TestRefreshFailureDeadLetters: a failing refresh wedges the source,
// records a dead letter, leaves the watermark unmoved — and Redrive
// recovers once the fault passes.
func TestRefreshFailureDeadLetters(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	reg := obs.NewRegistry()
	integ.SetMetrics(reg)
	boom := errors.New("injected refresh crash")
	chaos.Arm("refresh.apply", 1, boom)
	defer chaos.Reset()

	n1 := Notification{Source: "all", Seq: 1, Update: saleInsert(t, sc, "TV set", "Mary")}
	integ.Receive(n1)

	wedged := integ.Wedged()
	if err, ok := wedged["all"]; !ok || !errors.Is(err, boom) {
		t.Fatalf("wedged = %v, want injected crash for source all", wedged)
	}
	dead := integ.DeadLetters()
	if len(dead) != 1 || dead[0].Seq != 1 || !errors.Is(dead[0].Err, boom) {
		t.Fatalf("dead letters = %v", dead)
	}
	if marks := integ.Marks(); marks["all"] != 0 {
		t.Fatalf("watermark advanced past failed refresh: %v", marks)
	}
	if integ.Flush() {
		t.Fatal("Flush true while a notification is wedged")
	}

	// Fault cleared: redrive applies the held notification.
	chaos.Reset()
	if err := integ.Redrive(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !integ.Flush() {
		t.Fatal("redrive did not recover the wedged source")
	}
	if len(integ.Wedged()) != 0 {
		t.Fatalf("still wedged after successful redrive: %v", integ.Wedged())
	}
	if marks := integ.Marks(); marks["all"] != 1 {
		t.Fatalf("marks = %v, want all:1", marks)
	}
}

// TestCheckpointRecoverRoundTrip drives updates through a journaled
// integrator, "crashes" it, and rebuilds from disk alone — asserting
// exactly-once application and zero source contact.
func TestCheckpointRecoverRoundTrip(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := NewEnvironment(comp, map[string][]string{"all": {"Sale", "Emp"}})
	if err != nil {
		t.Fatal(err)
	}
	integ := env.Integrator
	src, _ := env.Source("all")

	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.snap")
	jpath := filepath.Join(dir, "wal.dwj")
	jw, err := openJournal(t, jpath)
	if err != nil {
		t.Fatal(err)
	}
	integ.AttachJournal(jw)

	apply := func(item, clerk string) {
		t.Helper()
		if _, err := src.Apply(saleInsert(t, sc, item, clerk)); err != nil {
			t.Fatal(err)
		}
	}
	apply("TV set", "Mary")
	apply("VCR", "Mary")
	if err := integ.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	apply("PC", "John") // journaled after the checkpoint
	apply("Computer", "Paula")
	wantFP := fingerprintAll(integ.Warehouse())
	wantMarks := integ.Marks()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: rebuild from snapshot + journal suffix. No source contact.
	rec, err := Recover(comp, snapPath, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintAll(rec.Warehouse()); got != wantFP {
		t.Fatalf("recovered state diverges:\ngot:\n%s\nwant:\n%s", got, wantFP)
	}
	if got := rec.Marks(); got["all"] != wantMarks["all"] {
		t.Fatalf("recovered marks = %v, want %v", got, wantMarks)
	}
	// Exactly-once: only the two post-checkpoint records replayed.
	if refreshes, _ := rec.Stats(); refreshes != 2 {
		t.Fatalf("replay refreshes = %d, want 2 (journal suffix only)", refreshes)
	}
	if dups, _ := rec.DeliveryStats(); dups != 0 {
		t.Fatalf("replay dropped %d duplicates, want 0 after checkpoint compaction", dups)
	}
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Fatalf("recovery issued %d source queries", n)
	}

	// Recovery is idempotent: a second crash right after recovery lands
	// on the same state from the same files.
	rec2, err := Recover(comp, snapPath, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintAll(rec2.Warehouse()); got != wantFP {
		t.Fatal("double recovery diverged")
	}
	if refreshes, _ := rec2.Stats(); refreshes != 2 {
		t.Fatalf("second replay refreshes = %d, want 2", refreshes)
	}
}

// TestRecoverMissingFilesIsFresh: neither snapshot nor journal on disk
// means an empty, working integrator.
func TestRecoverMissingFilesIsFresh(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	dir := t.TempDir()
	integ, err := Recover(comp, filepath.Join(dir, "nope.snap"), filepath.Join(dir, "nope.dwj"))
	if err != nil {
		t.Fatal(err)
	}
	if !integ.Flush() {
		t.Fatal("fresh integrator has pending notifications")
	}
	if n := integ.Warehouse().Size(); n != 0 {
		t.Fatalf("fresh warehouse holds %d tuples, want 0", n)
	}
}

// TestJournalFailureRefusesNotification: when the write-ahead append
// fails, the notification is not accepted (it would be unrecoverable
// after a crash) and the failure is dead-lettered via Receive.
func TestJournalFailureRefusesNotification(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	dir := t.TempDir()
	jw, err := openJournal(t, filepath.Join(dir, "wal.dwj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jw.Close()
	integ.AttachJournal(jw)

	boom := errors.New("disk gone")
	chaos.Arm("journal.append", 1, boom)
	defer chaos.Reset()
	n := Notification{Source: "all", Seq: 1, Update: saleInsert(t, sc, "TV set", "Mary")}
	if err := integ.Offer(n); !errors.Is(err, boom) {
		t.Fatalf("offer with failing journal: err=%v, want injected error", err)
	}
	if refreshes, _ := integ.Stats(); refreshes != 0 {
		t.Fatal("refresh ran despite failed write-ahead append")
	}
	// Receive routes the same failure to the dead-letter list.
	chaos.Arm("journal.append", 1, boom)
	integ.Receive(n)
	if dead := integ.DeadLetters(); len(dead) != 1 || !errors.Is(dead[0].Err, boom) {
		t.Fatalf("dead letters = %v", dead)
	}
	// With the fault gone the same notification goes through.
	chaos.Reset()
	if err := integ.Offer(n); err != nil {
		t.Fatal(err)
	}
	if !integ.Flush() {
		t.Fatal("notification pending after journal recovered")
	}
}

// fingerprintAll captures every warehouse relation's content.
func fingerprintAll(w interface {
	Names() []string
	Relation(string) (*relation.Relation, bool)
}) string {
	out := ""
	for _, n := range w.Names() {
		r, _ := w.Relation(n)
		out += fmt.Sprintf("%s=%s\n", n, r.Fingerprint())
	}
	return out
}

// TestRedriveHonorsContext is the regression test for the Redrive
// cancellation bug: a pre-canceled context must return ctx.Err()
// promptly without draining anything, and the held notification must
// stay buffered — neither wedged nor dead-lettered — for a later,
// uncanceled redrive to apply.
func TestRedriveHonorsContext(t *testing.T) {
	integ, sc := detachedIntegrator(t)
	boom := errors.New("injected refresh crash")
	chaos.Arm("refresh.apply", 1, boom)
	integ.Receive(Notification{Source: "all", Seq: 1, Update: saleInsert(t, sc, "TV set", "Mary")})
	chaos.Reset()
	if len(integ.Wedged()) != 1 {
		t.Fatalf("setup: wedged = %v, want source all held", integ.Wedged())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := integ.Redrive(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Redrive(canceled) = %v, want context.Canceled", err)
	}
	if marks := integ.Marks(); marks["all"] != 0 {
		t.Fatalf("canceled redrive advanced the watermark: %v", marks)
	}
	if dead := integ.DeadLetters(); len(dead) != 1 {
		t.Fatalf("canceled redrive recorded extra dead letters: %v", dead)
	}

	// The same notification applies once the caller's context allows it.
	if err := integ.Redrive(context.Background()); err != nil {
		t.Fatal(err)
	}
	if marks := integ.Marks(); marks["all"] != 1 {
		t.Fatalf("marks = %v, want all:1 after uncanceled redrive", marks)
	}
	if !integ.Flush() || len(integ.Wedged()) != 0 {
		t.Fatalf("pipeline not clean: wedged=%v", integ.Wedged())
	}
}

// TestRecoverZeroMarksAndEmptyJournal pins the degenerate recovery
// inputs: a checkpoint written before any update (zero watermarks), a
// journal path that does not exist, and a journal file that exists but
// is empty. All three must recover to a clean, serviceable integrator
// — no phantom marks, nothing pending, and a warehouse equal to the
// initial materialization.
func TestRecoverZeroMarksAndEmptyJournal(t *testing.T) {
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := NewEnvironment(comp, map[string][]string{"all": {"Sale", "Emp"}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.snap")

	// Checkpoint with zero updates applied: the marks map is empty.
	if err := env.Integrator.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	ms, marks, err := snapshot.LoadFileMarks(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 0 {
		t.Fatalf("fresh checkpoint carries marks %v, want none", marks)
	}
	if ms == nil {
		t.Fatal("fresh checkpoint has no state")
	}

	// Missing journal: Replay reports nothing and recovery proceeds.
	missing := filepath.Join(dir, "missing.dwj")
	if n, torn, err := journal.Replay(missing, sc.DB, func(journal.Record) error {
		t.Fatal("replay of a missing journal delivered a record")
		return nil
	}); n != 0 || torn || err != nil {
		t.Fatalf("Replay(missing) = (%d, %v, %v), want (0, false, nil)", n, torn, err)
	}
	got, err := Recover(comp, snapPath, missing)
	if err != nil {
		t.Fatalf("recovery with zero marks + missing journal: %v", err)
	}
	if marks := got.Marks(); len(marks) != 0 {
		t.Fatalf("recovered marks = %v, want none", marks)
	}
	if !got.Flush() || len(got.Wedged()) != 0 {
		t.Fatal("recovered integrator not clean")
	}
	if a, b := fingerprintAll(got.Warehouse()), fingerprintAll(env.Integrator.Warehouse()); a != b {
		t.Fatalf("recovered warehouse diverged:\ngot:\n%s\nwant:\n%s", a, b)
	}

	// Empty journal file (created, never written): same result.
	empty := filepath.Join(dir, "empty.dwj")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, _, err := journal.Replay(empty, sc.DB, func(journal.Record) error { return nil }); n != 0 || err != nil {
		t.Fatalf("Replay(empty) = (%d, _, %v), want (0, _, nil)", n, err)
	}
	got2, err := Recover(comp, snapPath, empty)
	if err != nil {
		t.Fatalf("recovery with zero marks + empty journal: %v", err)
	}
	if marks := got2.Marks(); len(marks) != 0 {
		t.Fatalf("recovered marks = %v, want none", marks)
	}

	// The recovered pipeline is live: an update applies normally.
	src, _ := env.Source("all")
	src.OnUpdate(got2.Receive)
	if _, err := src.Apply(saleInsert(t, sc, "TV set", "Mary")); err != nil {
		t.Fatal(err)
	}
	if marks := got2.Marks(); marks["all"] != 1 {
		t.Fatalf("post-recovery apply: marks = %v, want all:1", marks)
	}
}
