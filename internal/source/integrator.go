package source

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/maintain"
	"dwcomplement/internal/warehouse"
)

// Integrator is the component between sources and warehouse in Figure 1:
// it receives change notifications, serializes them, and maintains the
// warehouse incrementally and update-independently. It holds no source
// connection beyond the notification channel — by construction it cannot
// issue the dashed-arrow queries.
type Integrator struct {
	w *warehouse.Warehouse
	m *maintain.Maintainer

	mu       sync.Mutex
	applied  map[string]uint64 // last sequence number applied per source
	pending  map[string][]Notification
	refreshs int
	changed  int
}

// NewIntegrator wires an integrator to the warehouse. Registration with
// sources is the caller's job (src.OnUpdate(integ.Receive)).
func NewIntegrator(w *warehouse.Warehouse, comp *core.Complement) *Integrator {
	return &Integrator{
		w:       w,
		m:       maintain.NewMaintainer(comp),
		applied: make(map[string]uint64),
		pending: make(map[string][]Notification),
	}
}

// Receive accepts a notification and applies it — immediately when it is
// the next in the source's sequence, otherwise it is buffered until the
// gap closes (sources deliver in order, but concurrent sources interleave
// arbitrarily; per-source order is all the maintenance needs, since
// updates from different sources touch disjoint relations).
func (g *Integrator) Receive(n Notification) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending[n.Source] = append(g.pending[n.Source], n)
	g.drainLocked(n.Source)
}

func (g *Integrator) drainLocked(src string) {
	queue := g.pending[src]
	sort.Slice(queue, func(i, j int) bool { return queue[i].Seq < queue[j].Seq })
	next := g.applied[src] + 1
	i := 0
	for ; i < len(queue) && queue[i].Seq == next; i++ {
		if _, err := g.m.RefreshContext(context.Background(), g.w, queue[i].Update); err != nil {
			// Maintenance failures indicate a corrupted warehouse state;
			// surface loudly rather than silently dropping updates.
			panic(fmt.Sprintf("source: integrator refresh failed: %v", err))
		}
		g.applied[src] = next
		g.refreshs++
		g.changed += queue[i].Update.Size()
		next++
	}
	g.pending[src] = queue[i:]
}

// Flush reports whether all received notifications have been applied (no
// sequence gaps outstanding).
func (g *Integrator) Flush() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, q := range g.pending {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// Stats returns the number of refreshes applied and source tuple changes
// integrated.
func (g *Integrator) Stats() (refreshes, changes int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refreshs, g.changed
}

// Warehouse returns the maintained warehouse.
func (g *Integrator) Warehouse() *warehouse.Warehouse { return g.w }

// Environment bundles a complete Figure 1 deployment: sources partitioning
// the schema set, the integrator, and the warehouse.
type Environment struct {
	Sources    []*Source
	Integrator *Integrator
}

// NewEnvironment builds sources owning the given relation partitions (one
// slice per source, jointly covering all of D), seals them, computes the
// warehouse from the complement, and wires notifications. The warehouse is
// initialized from the empty state; drive it by applying transactions to
// the sources.
func NewEnvironment(comp *core.Complement, partitions map[string][]string) (*Environment, error) {
	db := comp.Database()
	owned := map[string]string{}
	for srcName, rels := range partitions {
		for _, r := range rels {
			if prev, dup := owned[r]; dup {
				return nil, fmt.Errorf("source: relation %q owned by both %s and %s", r, prev, srcName)
			}
			owned[r] = srcName
		}
	}
	for _, r := range db.Names() {
		if _, ok := owned[r]; !ok {
			return nil, fmt.Errorf("source: relation %q not owned by any source", r)
		}
	}

	w := warehouse.New(comp)
	if err := w.Initialize(db.NewState()); err != nil {
		return nil, err
	}
	integ := NewIntegrator(w, comp)

	env := &Environment{Integrator: integ}
	names := make([]string, 0, len(partitions))
	for n := range partitions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s, err := NewSource(n, db, true, partitions[n]...)
		if err != nil {
			return nil, err
		}
		s.OnUpdate(integ.Receive)
		env.Sources = append(env.Sources, s)
	}
	return env, nil
}

// Source returns the named source.
func (e *Environment) Source(name string) (*Source, bool) {
	for _, s := range e.Sources {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// TotalQueryAttempts sums ad-hoc query attempts across all sources; an
// update-independent deployment keeps this at zero.
func (e *Environment) TotalQueryAttempts() int64 {
	var n int64
	for _, s := range e.Sources {
		n += s.QueryAttempts()
	}
	return n
}

// CombinedState merges all sources' snapshots into one database state, for
// end-to-end verification in tests.
func (e *Environment) CombinedState() (*catalog.State, error) {
	if len(e.Sources) == 0 {
		return nil, fmt.Errorf("source: environment has no sources")
	}
	db := e.Sources[0].db
	st := db.NewState()
	for _, s := range e.Sources {
		snap := s.Snapshot()
		for _, name := range db.Names() {
			if !s.Owns(name) {
				continue
			}
			r, _ := snap.Relation(name)
			cur, _ := st.Relation(name)
			cur.InsertAll(r)
		}
	}
	return st, nil
}
