package source

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/journal"
	"dwcomplement/internal/maintain"
	"dwcomplement/internal/obs"
	"dwcomplement/internal/snapshot"
	"dwcomplement/internal/trace"
	"dwcomplement/internal/warehouse"
)

// ErrBackpressure reports that a source's pending buffer is full: the
// integrator refuses the notification rather than queueing without
// bound. The dropped report is recovered through the gap machinery
// (Gaps/Resync), which re-requests it from the reporting channel.
var ErrBackpressure = errors.New("source: integrator pending buffer full")

// GapError describes a head-of-line sequence gap: the integrator has
// buffered notifications for a source but the next-expected report is
// missing (dropped in transit or refused under backpressure). It is the
// typed signal the resync machinery acts on.
type GapError struct {
	Source   string
	Expected uint64        // next sequence number the integrator needs
	Have     uint64        // lowest buffered sequence number
	Pending  int           // notifications buffered behind the gap
	Age      time.Duration // how long the gap has persisted
}

func (e *GapError) Error() string {
	return fmt.Sprintf("source: %s gap: need seq %d, have %d (%d pending, open %v)",
		e.Source, e.Expected, e.Have, e.Pending, e.Age.Round(time.Millisecond))
}

// DeadLetter is one notification the integrator accepted but could not
// apply (refresh failure), or could not accept (backpressure, journal
// failure). Nothing is ever silently swallowed: every failure lands
// here with its cause.
type DeadLetter struct {
	Notification
	Err  error
	Time time.Time
}

// defaultMaxPending bounds each source's pending buffer.
const defaultMaxPending = 1024

// Integrator is the component between sources and warehouse in Figure 1:
// it receives change notifications, serializes them, and maintains the
// warehouse incrementally and update-independently. It holds no source
// connection beyond the notification channel — by construction it cannot
// issue the dashed-arrow queries.
//
// The delivery path is hardened against real transports: stale
// duplicates (Seq ≤ applied) are dropped instead of wedging the drain
// loop, per-source pending buffers are bounded with backpressure,
// head-of-line gaps surface as typed GapErrors with a resync hook that
// re-requests reports from the reporting channel only, and refresh
// failures go to a dead-letter list instead of being swallowed. With an
// attached journal every accepted notification is written ahead of its
// refresh, making the pipeline crash-recoverable (see Recover).
type Integrator struct {
	w *warehouse.Warehouse
	m *maintain.Maintainer

	mu         sync.Mutex
	applied    map[string]uint64 // last sequence number applied per source
	pending    map[string][]Notification
	gapSince   map[string]time.Time // when the current head gap opened
	wedged     map[string]error     // sources whose head refresh keeps failing
	dead       []DeadLetter
	jw         *journal.Writer
	maxPending int
	gapTimeout time.Duration
	resync     func(source string, fromSeq uint64) error
	tracer     *trace.Tracer // nil = delivery is untraced
	refreshs   int
	changed    int
	dups       int
	rejected   int

	mDups, mRejected, mDead, mResyncs *obs.Counter
}

// NewIntegrator wires an integrator to the warehouse. Registration with
// sources is the caller's job (src.OnUpdate(integ.Receive)).
func NewIntegrator(w *warehouse.Warehouse, comp *core.Complement) *Integrator {
	return &Integrator{
		w:          w,
		m:          maintain.NewMaintainer(comp),
		applied:    make(map[string]uint64),
		pending:    make(map[string][]Notification),
		gapSince:   make(map[string]time.Time),
		wedged:     make(map[string]error),
		maxPending: defaultMaxPending,
	}
}

// SetMaxPending bounds each source's pending buffer (minimum 1).
func (g *Integrator) SetMaxPending(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 1 {
		n = 1
	}
	g.maxPending = n
}

// SetGapTimeout sets how long a head-of-line gap must persist before
// Resync re-requests it (0 = immediately eligible).
func (g *Integrator) SetGapTimeout(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gapTimeout = d
}

// SetResyncHook installs the re-request callback used by Resync. The
// hook must re-deliver reports through the notification channel (e.g.
// Source.Resend) — it is handed a source name and the first missing
// sequence number, never a query handle, so the sealed-source property
// is preserved by construction.
func (g *Integrator) SetResyncHook(fn func(source string, fromSeq uint64) error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resync = fn
}

// SetTracer attaches a tracer: offers and deliveries of reports that
// carry a sampled traceparent record "integrator.offer" and
// "integrator.deliver" spans (with the journal append and per-target
// refresh work as children), continuing the source's trace. Call before
// traffic starts.
func (g *Integrator) SetTracer(t *trace.Tracer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tracer = t
}

// SetMetrics registers the integrator's counters and gauges with an obs
// registry (duplicates, rejected offers, dead letters, resyncs, pending
// and wedged gauges).
func (g *Integrator) SetMetrics(reg *obs.Registry) {
	g.mu.Lock()
	g.mDups = reg.Counter("dw_integrator_duplicates_total",
		"Stale or duplicated notifications dropped by the integrator.", nil)
	g.mRejected = reg.Counter("dw_integrator_rejected_total",
		"Notifications refused (backpressure or journal failure).", nil)
	g.mDead = reg.Counter("dw_integrator_dead_letters_total",
		"Notifications routed to the dead-letter list.", nil)
	g.mResyncs = reg.Counter("dw_integrator_resyncs_total",
		"Gap re-requests issued through the reporting channel.", nil)
	g.mu.Unlock()
	reg.GaugeFunc("dw_integrator_pending_notifications",
		"Notifications buffered behind sequence gaps.", nil, func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			n := 0
			for _, q := range g.pending {
				n += len(q)
			}
			return float64(n)
		})
	reg.GaugeFunc("dw_integrator_wedged_sources",
		"Sources whose head notification keeps failing to refresh.", nil, func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.wedged))
		})
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// AttachJournal starts write-ahead journaling: every subsequently
// accepted notification is appended (checksummed, fsync'd) before its
// refresh runs. Attach before traffic starts; Recover attaches
// automatically.
func (g *Integrator) AttachJournal(jw *journal.Writer) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.jw = jw
}

// Receive accepts a notification and applies it — immediately when it
// is the next in the source's sequence, otherwise it is buffered until
// the gap closes (sources deliver in order, but real transports drop,
// duplicate, and reorder; per-source order is all the maintenance
// needs, since updates from different sources touch disjoint
// relations). Notifications the integrator must refuse (see Offer) are
// recorded as dead letters, never silently dropped.
func (g *Integrator) Receive(n Notification) {
	if err := g.Offer(n); err != nil {
		g.mu.Lock()
		g.dead = append(g.dead, DeadLetter{Notification: n, Err: err, Time: time.Now()})
		inc(g.mDead)
		g.mu.Unlock()
	}
}

// Offer is Receive with an error: it returns ErrBackpressure when the
// source's pending buffer is full and the journal's error when the
// write-ahead append fails. In both cases the notification is not
// accepted and the caller (or the gap machinery) must re-deliver it.
// Stale duplicates are dropped and counted, not errors.
func (g *Integrator) Offer(n Notification) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	ctx, sp := g.tracer.StartRemote(context.Background(), n.Traceparent, "integrator.offer")
	defer sp.End()
	sp.SetAttr("source", n.Source)
	sp.SetAttrInt("seq", int64(n.Seq))
	if n.Seq <= g.applied[n.Source] {
		g.dups++ // already applied: a transport re-delivery
		inc(g.mDups)
		sp.SetAttr("outcome", "duplicate")
		return nil
	}
	for _, p := range g.pending[n.Source] {
		if p.Seq == n.Seq {
			g.dups++ // already buffered
			inc(g.mDups)
			sp.SetAttr("outcome", "duplicate")
			return nil
		}
	}
	// A full buffer refuses out-of-order reports — but never the one that
	// closes the head-of-line gap, or a full buffer of gapped entries
	// could deadlock delivery permanently.
	if len(g.pending[n.Source]) >= g.maxPending && n.Seq != g.applied[n.Source]+1 {
		g.rejected++
		inc(g.mRejected)
		sp.SetAttr("outcome", "backpressure")
		return fmt.Errorf("source: %s seq %d refused: %w", n.Source, n.Seq, ErrBackpressure)
	}
	if g.jw != nil {
		if err := g.jw.AppendContext(ctx, journal.Record{Source: n.Source, Seq: n.Seq, Update: n.Update}); err != nil {
			g.rejected++
			inc(g.mRejected)
			sp.SetAttr("outcome", "journal-error")
			return fmt.Errorf("source: journal append for %s seq %d: %w", n.Source, n.Seq, err)
		}
	}
	g.pending[n.Source] = append(g.pending[n.Source], n)
	g.drainLocked(context.Background(), n.Source)
	switch {
	case g.applied[n.Source] >= n.Seq:
		sp.SetAttr("outcome", "applied")
	case g.wedged[n.Source] != nil:
		sp.SetAttr("outcome", "wedged")
	default:
		sp.SetAttr("outcome", "gap")
	}
	return nil
}

// drainLocked applies buffered notifications in sequence order until it
// reaches a gap, a refresh failure, or ctx cancellation. Stale entries
// (Seq ≤ applied) are discarded — a duplicate sorting to the head of
// the queue must never block the drain loop. A canceled refresh leaves
// its notification at the head for a later drive without wedging the
// source or recording a dead letter: cancellation is the caller's
// choice, not a pipeline fault.
func (g *Integrator) drainLocked(ctx context.Context, src string) {
	queue := g.pending[src]
	sort.Slice(queue, func(i, j int) bool { return queue[i].Seq < queue[j].Seq })
	next := g.applied[src] + 1
	i := 0
loop:
	for i < len(queue) {
		switch {
		case queue[i].Seq < next:
			// Stale duplicate: drop and keep draining.
			g.dups++
			inc(g.mDups)
			i++
		case queue[i].Seq == next:
			if ctx.Err() != nil {
				break loop
			}
			rctx, sp := g.tracer.StartRemote(ctx, queue[i].Traceparent, "integrator.deliver")
			sp.SetAttr("source", src)
			sp.SetAttrInt("seq", int64(queue[i].Seq))
			_, err := g.m.RefreshContext(rctx, g.w, queue[i].Update)
			if err != nil {
				sp.SetAttr("outcome", "error")
			}
			sp.End()
			if err != nil {
				if ctx.Err() != nil {
					// Canceled mid-refresh: the atomic refresh left the
					// warehouse unchanged; redrive later.
					break loop
				}
				// The atomic refresh left the warehouse unchanged; the
				// notification stays at the head for redelivery and the
				// failure is recorded, not swallowed.
				g.wedged[src] = err
				g.dead = append(g.dead, DeadLetter{Notification: queue[i], Err: err, Time: time.Now()})
				inc(g.mDead)
				break loop
			}
			delete(g.wedged, src)
			g.applied[src] = next
			g.refreshs++
			g.changed += queue[i].Update.Size()
			next++
			i++
		default:
			// Sequence gap: everything from here on waits for it.
			break loop
		}
	}
	g.pending[src] = append([]Notification(nil), queue[i:]...)
	if len(g.pending[src]) == 0 {
		delete(g.pending, src)
		delete(g.gapSince, src)
	} else if _, wedged := g.wedged[src]; !wedged && queue[i].Seq > next {
		if g.gapSince[src].IsZero() {
			g.gapSince[src] = time.Now()
		}
	} else {
		delete(g.gapSince, src)
	}
}

// Gaps reports every source whose next-expected notification is
// missing while later ones are buffered.
func (g *Integrator) Gaps() []*GapError {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gapsLocked()
}

func (g *Integrator) gapsLocked() []*GapError {
	var out []*GapError
	srcs := make([]string, 0, len(g.pending))
	for src := range g.pending {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		q := g.pending[src]
		if len(q) == 0 {
			continue
		}
		next := g.applied[src] + 1
		if q[0].Seq <= next {
			continue // head is applicable (wedged, not gapped)
		}
		age := time.Duration(0)
		if since := g.gapSince[src]; !since.IsZero() {
			age = time.Since(since)
		}
		out = append(out, &GapError{
			Source:   src,
			Expected: next,
			Have:     q[0].Seq,
			Pending:  len(q),
			Age:      age,
		})
	}
	return out
}

// Resync re-requests missing reports for every gap older than the gap
// timeout, through the installed resync hook — which talks to the
// reporting channel only, so the sealed-source query counter stays 0.
// It returns the gaps it acted on and the first hook error.
func (g *Integrator) Resync() ([]*GapError, error) {
	g.mu.Lock()
	hook := g.resync
	var due []*GapError
	for _, gap := range g.gapsLocked() {
		if gap.Age >= g.gapTimeout {
			due = append(due, gap)
		}
	}
	resyncCounter := g.mResyncs
	g.mu.Unlock()
	if hook == nil || len(due) == 0 {
		return due, nil
	}
	var firstErr error
	for _, gap := range due {
		inc(resyncCounter)
		if err := hook(gap.Source, gap.Expected); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("source: resync %s from %d: %w", gap.Source, gap.Expected, err)
		}
	}
	return due, firstErr
}

// Redrive re-attempts every source's buffered notifications, clearing
// wedges whose cause (e.g. a transient refresh failure) has passed. It
// honors ctx: cancellation is checked before each source's drain and
// inside the drain loop before each refresh, and the first non-nil
// ctx.Err() is returned promptly — partially driven sources simply keep
// their remaining notifications buffered for the next call.
func (g *Integrator) Redrive(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	srcs := make([]string, 0, len(g.pending))
	for src := range g.pending {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.drainLocked(ctx, src)
	}
	return ctx.Err()
}

// Wedged returns the sources whose head notification keeps failing to
// refresh, with the latest error per source.
func (g *Integrator) Wedged() map[string]error {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]error, len(g.wedged))
	for s, e := range g.wedged {
		out[s] = e
	}
	return out
}

// DeadLetters returns a copy of the dead-letter list: every
// notification that was refused or whose refresh failed, with causes.
func (g *Integrator) DeadLetters() []DeadLetter {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]DeadLetter(nil), g.dead...)
}

// Flush reports whether all received notifications have been applied
// (no sequence gaps or wedges outstanding).
func (g *Integrator) Flush() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, q := range g.pending {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// Stats returns the number of refreshes applied and source tuple changes
// integrated.
func (g *Integrator) Stats() (refreshes, changes int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refreshs, g.changed
}

// DeliveryStats returns the delivery-hardening counters: duplicates
// dropped and notifications refused.
func (g *Integrator) DeliveryStats() (duplicates, rejected int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dups, g.rejected
}

// Marks returns a copy of the per-source applied-sequence watermarks.
func (g *Integrator) Marks() map[string]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]uint64, len(g.applied))
	for s, q := range g.applied {
		out[s] = q
	}
	return out
}

// Checkpoint durably saves the warehouse state together with the
// applied watermarks (atomic temp-file + rename), then compacts the
// journal: applied records are covered by the snapshot, and buffered
// but unapplied notifications are re-appended so nothing the journal
// was trusted with is lost.
func (g *Integrator) Checkpoint(path string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := snapshot.SaveFileMarks(path, g.w.State(), g.applied); err != nil {
		return err
	}
	if g.jw == nil {
		return nil
	}
	if err := g.jw.Reset(); err != nil {
		return err
	}
	for _, q := range g.pending {
		for _, n := range q {
			if err := g.jw.Append(journal.Record{Source: n.Source, Seq: n.Seq, Update: n.Update}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Recover rebuilds an integrator from its durable state alone — the
// snapshot (with watermarks) plus the journal suffix — exactly the
// restart protocol update independence promises: no source is
// contacted. A missing snapshot means a fresh warehouse; a missing
// journal means nothing to replay. Refresh failures during replay wedge
// the source (visible via Wedged/DeadLetters) instead of aborting
// recovery; journal corruption does abort.
func Recover(comp *core.Complement, snapPath, journalPath string) (*Integrator, error) {
	w := warehouse.New(comp)
	var marks map[string]uint64
	loaded := false
	if snapPath != "" {
		ms, mk, err := snapshot.LoadFileMarks(snapPath)
		switch {
		case err == nil:
			if verr := snapshot.Verify(ms, comp.Resolver()); verr != nil {
				return nil, verr
			}
			w.LoadState(ms)
			marks = mk
			loaded = true
		case os.IsNotExist(err):
			// fresh deployment
		default:
			return nil, err
		}
	}
	if !loaded {
		if err := w.Initialize(comp.Database().NewState()); err != nil {
			return nil, err
		}
	}
	g := NewIntegrator(w, comp)
	for s, q := range marks {
		g.applied[s] = q
	}
	// Replay with an effectively unbounded buffer: every journaled
	// record was accepted once and must not bounce off backpressure.
	g.maxPending = int(^uint(0) >> 1)
	if journalPath != "" {
		if _, _, err := journal.Replay(journalPath, comp.Database(), func(rec journal.Record) error {
			// Offer dedups via the watermarks (exactly-once) and routes
			// refresh failures to the wedge/dead-letter machinery.
			return g.Offer(Notification{Source: rec.Source, Seq: rec.Seq, Update: rec.Update})
		}); err != nil {
			return nil, err
		}
		jw, err := journal.Open(journalPath)
		if err != nil {
			return nil, err
		}
		g.jw = jw
	}
	g.maxPending = defaultMaxPending
	return g, nil
}

// Warehouse returns the maintained warehouse.
func (g *Integrator) Warehouse() *warehouse.Warehouse { return g.w }

// Environment bundles a complete Figure 1 deployment: sources partitioning
// the schema set, the integrator, and the warehouse.
type Environment struct {
	Sources    []*Source
	Integrator *Integrator
}

// NewEnvironment builds sources owning the given relation partitions (one
// slice per source, jointly covering all of D), seals them, computes the
// warehouse from the complement, and wires notifications. The warehouse is
// initialized from the empty state; drive it by applying transactions to
// the sources. The integrator's resync hook is wired to Source.Resend —
// gap recovery re-requests reports through the reporting channel, never
// the (sealed) query interface.
func NewEnvironment(comp *core.Complement, partitions map[string][]string) (*Environment, error) {
	db := comp.Database()
	owned := map[string]string{}
	for srcName, rels := range partitions {
		for _, r := range rels {
			if prev, dup := owned[r]; dup {
				return nil, fmt.Errorf("source: relation %q owned by both %s and %s", r, prev, srcName)
			}
			owned[r] = srcName
		}
	}
	for _, r := range db.Names() {
		if _, ok := owned[r]; !ok {
			return nil, fmt.Errorf("source: relation %q not owned by any source", r)
		}
	}

	w := warehouse.New(comp)
	if err := w.Initialize(db.NewState()); err != nil {
		return nil, err
	}
	integ := NewIntegrator(w, comp)

	env := &Environment{Integrator: integ}
	names := make([]string, 0, len(partitions))
	for n := range partitions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s, err := NewSource(n, db, true, partitions[n]...)
		if err != nil {
			return nil, err
		}
		s.OnUpdate(integ.Receive)
		env.Sources = append(env.Sources, s)
	}
	integ.SetResyncHook(func(src string, from uint64) error {
		s, ok := env.Source(src)
		if !ok {
			return fmt.Errorf("source: resync target %q unknown", src)
		}
		return s.Resend(from)
	})
	return env, nil
}

// Source returns the named source.
func (e *Environment) Source(name string) (*Source, bool) {
	for _, s := range e.Sources {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// TotalQueryAttempts sums ad-hoc query attempts across all sources; an
// update-independent deployment keeps this at zero.
func (e *Environment) TotalQueryAttempts() int64 {
	var n int64
	for _, s := range e.Sources {
		n += s.QueryAttempts()
	}
	return n
}

// CombinedState merges all sources' snapshots into one database state, for
// end-to-end verification in tests.
func (e *Environment) CombinedState() (*catalog.State, error) {
	if len(e.Sources) == 0 {
		return nil, fmt.Errorf("source: environment has no sources")
	}
	db := e.Sources[0].db
	st := db.NewState()
	for _, s := range e.Sources {
		snap := s.Snapshot()
		for _, name := range db.Names() {
			if !s.Owns(name) {
				continue
			}
			r, _ := snap.Relation(name)
			cur, _ := st.Relation(name)
			cur.InsertAll(r)
		}
	}
	return st, nil
}
