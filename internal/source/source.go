// Package source simulates the decoupled warehousing architecture of
// Figure 1: autonomous source databases that apply local transactions and
// merely *report* their changes to an integrator, which maintains the
// warehouse from those reports and the warehouse's own state alone. The
// defining property of the architecture — the integrator cannot query the
// sources — is enforced, not just assumed: a sealed source rejects ad-hoc
// queries and counts the attempts, and the test suite asserts the counter
// stays at zero through arbitrary maintenance schedules.
package source

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/constraint"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/trace"
)

// Notification is a change report from a source: the update applied, with
// a per-source sequence number for ordered delivery. EmittedUnixNano and
// Traceparent are the lineage carried down the reporting channel: the
// emission timestamp anchors the warehouse's refresh-lag measurement,
// and the traceparent (W3C format, empty when the report was not
// sampled) lets every downstream hop join the report's trace.
type Notification struct {
	Source string
	Seq    uint64
	Update *catalog.Update

	EmittedUnixNano int64
	Traceparent     string
}

// Reporter is the reporting-channel face of a source — the only surface
// the integrator side of Figure 1 may depend on. It carries reports
// forward (OnUpdate) and re-delivers retained ones on request (Resend);
// it deliberately has no query method, so depending on a Reporter can
// never weaken the sealed-source property. *Source implements it
// in-process; remote.Client implements it over HTTP.
type Reporter interface {
	// Name identifies the source in notifications and watermarks.
	Name() string
	// OnUpdate registers the delivery callback for change reports.
	OnUpdate(fn func(Notification))
	// Resend re-delivers every retained report with sequence ≥ from
	// through the registered callback.
	Resend(from uint64) error
}

var _ Reporter = (*Source)(nil)

// Source is one autonomous operational database. It owns a subset of the
// schema set D (its local relations), applies transactions locally, and
// reports each applied update. When sealed, ad-hoc queries are rejected —
// the paper's "highly secure or legacy systems" case.
type Source struct {
	name   string
	db     *catalog.Database
	local  relation.AttrSet // relation names owned by this source
	sealed bool

	mu      sync.Mutex
	state   *catalog.State
	seq     uint64
	notify  func(Notification)
	history []Notification // reports kept for Resend (gap recovery)
	queries atomic.Int64   // ad-hoc query attempts, sealed or not
	tracer  *trace.Tracer  // nil = report emission is untraced
}

// NewSource creates a source owning the given relations of db. The state
// starts empty; sealed sources reject Query calls.
func NewSource(name string, db *catalog.Database, sealed bool, owned ...string) (*Source, error) {
	for _, r := range owned {
		if _, ok := db.Schema(r); !ok {
			return nil, fmt.Errorf("source: %s claims unknown relation %q: %w", name, r, algebra.ErrUnknownRelation)
		}
	}
	return &Source{
		name:   name,
		db:     db,
		local:  relation.NewAttrSet(owned...),
		sealed: sealed,
		state:  db.NewState(),
	}, nil
}

// Name returns the source's name.
func (s *Source) Name() string { return s.name }

// Seq returns the sequence number of the last applied transaction.
func (s *Source) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Sealed reports whether the source rejects ad-hoc queries.
func (s *Source) Sealed() bool { return s.sealed }

// Owns reports whether the source owns the named relation.
func (s *Source) Owns(rel string) bool { return s.local.Has(rel) }

// OnUpdate registers the integrator's notification callback. Reports are
// delivered synchronously in apply order (per source); the integrator
// decides its own queueing.
func (s *Source) OnUpdate(fn func(Notification)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify = fn
}

// SetTracer attaches a tracer to the source: each subsequently applied
// transaction starts a "source.apply" root span (subject to the
// tracer's sampling rate) whose traceparent rides the emitted report
// down the reporting channel. Call before traffic starts.
func (s *Source) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// Apply runs a local transaction: the update may only touch owned
// relations, is applied under the database's constraints, and is then
// reported. It returns the assigned sequence number.
func (s *Source) Apply(u *catalog.Update) (uint64, error) {
	return s.ApplyContext(context.Background(), u)
}

// ApplyContext is Apply with a caller context: when ctx carries trace
// context (e.g. an inbound traceparent installed by
// trace.ContextWithRemote), the emitted report's span joins the
// caller's trace instead of starting a fresh one.
func (s *Source) ApplyContext(ctx context.Context, u *catalog.Update) (uint64, error) {
	for _, name := range u.Touched() {
		if !s.Owns(name) {
			return 0, fmt.Errorf("source: %s cannot update foreign relation %q", s.name, name)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, sp := s.tracer.Start(ctx, "source.apply")
	defer sp.End()
	sp.SetAttr("source", s.name)
	nu := u.Normalize(s.state)
	trial := s.state.Clone()
	if err := nu.Apply(trial); err != nil {
		sp.SetAttr("outcome", "rejected")
		return 0, fmt.Errorf("source: %s rejected transaction: %w", s.name, err)
	}
	// Autonomous sources can only check constraints they can see: keys of
	// owned relations and INDs whose both sides are local. Cross-source
	// constraints are the deployment's responsibility (as in the paper,
	// which assumes the global state consistent).
	if err := s.checkLocal(trial); err != nil {
		sp.SetAttr("outcome", "rejected")
		return 0, fmt.Errorf("source: %s rejected transaction: %w", s.name, err)
	}
	s.state = trial
	s.seq++
	sp.SetAttrInt("seq", int64(s.seq))
	sp.SetAttrInt("changes", int64(nu.Size()))
	n := Notification{
		Source:          s.name,
		Seq:             s.seq,
		Update:          nu,
		EmittedUnixNano: time.Now().UnixNano(),
		Traceparent:     sp.Context().Traceparent(),
	}
	s.history = append(s.history, n)
	if s.notify != nil {
		s.notify(n)
	}
	return s.seq, nil
}

// Resend re-delivers every retained report with sequence number ≥ from
// through the notification callback — the reporting channel of Figure 1,
// not the query interface, so a sealed source can serve gap recovery
// without weakening its seal. Reports older than the retained history
// (see TrimHistory) cannot be resent.
func (s *Source) Resend(from uint64) error {
	s.mu.Lock()
	fn := s.notify
	var batch []Notification
	for _, n := range s.history {
		if n.Seq >= from {
			batch = append(batch, n)
		}
	}
	trimmed := len(s.history) > 0 && s.history[0].Seq > from
	if len(s.history) == 0 && s.seq >= from {
		trimmed = true
	}
	s.mu.Unlock()
	if trimmed {
		return fmt.Errorf("source: %s cannot resend from seq %d: history trimmed", s.name, from)
	}
	if fn == nil {
		return fmt.Errorf("source: %s has no notification callback", s.name)
	}
	// Deliver outside the lock: the integrator's Receive may take its own
	// lock and, transitively, run a warehouse refresh.
	for _, n := range batch {
		fn(n)
	}
	return nil
}

// TrimHistory drops retained reports with sequence number ≤ upTo —
// typically the integrator's checkpointed watermark, after which those
// reports can never be re-requested.
func (s *Source) TrimHistory(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.history) && s.history[i].Seq <= upTo {
		i++
	}
	s.history = append([]Notification(nil), s.history[i:]...)
}

// checkLocal verifies the locally visible constraints on a trial state.
func (s *Source) checkLocal(st *catalog.State) error {
	for name := range s.local {
		sc, _ := s.db.Schema(name)
		r, _ := st.Relation(name)
		if err := constraint.CheckKey(sc, r); err != nil {
			return err
		}
	}
	for _, d := range s.db.Constraints().INDs() {
		if !s.Owns(d.From) || !s.Owns(d.To) {
			continue
		}
		from, _ := st.Relation(d.From)
		to, _ := st.Relation(d.To)
		attrs := d.X.Sorted()
		if !relation.Project(from, attrs...).SubsetOf(relation.Project(to, attrs...)) {
			return fmt.Errorf("local constraint %s violated", d)
		}
	}
	return nil
}

// Query evaluates an ad-hoc query against the source — the dashed arrow of
// Figure 1. Sealed sources refuse; every attempt is counted either way, so
// tests can assert the integrator never relies on this path.
func (s *Source) Query(e algebra.Expr) (*relation.Relation, error) {
	s.queries.Add(1)
	if s.sealed {
		return nil, fmt.Errorf("source: %s does not permit ad-hoc queries", s.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := algebra.EvalCtx(nil, e, s.state)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// QueryAttempts returns how many ad-hoc queries were attempted against the
// source.
func (s *Source) QueryAttempts() int64 { return s.queries.Load() }

// Snapshot returns a deep copy of the source's current local state, for
// test assertions only (a real integrator never calls this; the test suite
// uses it to compare end states).
func (s *Source) Snapshot() *catalog.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone()
}
