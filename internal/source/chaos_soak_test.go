package source

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/journal"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/workload"
)

// TestChaosSoak is the end-to-end fault-injection property test of the
// maintenance pipeline: random source transactions flow through lossy,
// duplicating, reordering channels into a journaled integrator that is
// crashed at random points (journal append/sync, snapshot write/rename,
// refresh apply) and recovered from disk alone. After every fault is
// drained the recovered warehouse must equal an oracle recomputation
// from the sources' true combined state, every report must have been
// applied exactly once (watermarks equal source sequence numbers), and
// the sealed sources' ad-hoc query counter must still be zero.
//
// Seeds come from DW_CHAOS_SEED: unset runs the three fixed CI seeds,
// "random" picks one from the clock and logs it for reproduction, and a
// number runs exactly that seed.
func TestChaosSoak(t *testing.T) {
	switch env := os.Getenv("DW_CHAOS_SEED"); env {
	case "":
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) { soak(t, seed) })
		}
	case "random":
		seed := time.Now().UnixNano()
		t.Logf("DW_CHAOS_SEED=%d # reproduce this run", seed)
		soak(t, seed)
	default:
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DW_CHAOS_SEED=%q is neither empty, \"random\", nor a number", env)
		}
		soak(t, seed)
	}
}

// crashPoints are the durability-critical code paths the soak arms.
var crashPoints = []string{
	"journal.append",
	"journal.sync",
	"snapshot.write",
	"snapshot.rename",
	"refresh.apply",
}

func soak(t *testing.T, seed int64) {
	chaos.Reset()
	defer chaos.Reset()
	rng := rand.New(rand.NewSource(seed))

	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := NewEnvironment(comp, map[string][]string{
		"sales":   {"Sale"},
		"company": {"Emp"},
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.snap")
	jpath := filepath.Join(dir, "wal.dwj")

	// The integrator is replaced on every crash-recovery; the faulty
	// channels deliver to whichever one is current.
	integ := env.Integrator
	jw, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	integ.AttachJournal(jw)

	deliver := func(n Notification) { integ.Receive(n) }
	channels := make(map[string]*chaos.FaultyChannel[Notification])
	for _, s := range env.Sources {
		ch := chaos.NewFaultyChannel(seed+int64(len(channels)), chaos.FaultConfig{
			Drop: 0.08, Duplicate: 0.12, Delay: 0.15,
		}, deliver)
		channels[s.Name()] = ch
		s.OnUpdate(ch.Send)
	}

	// recover simulates a process crash: drop the live integrator,
	// rebuild from snapshot + journal, re-wire channels and resync hook.
	crashes := 0
	recover_ := func() {
		crashes++
		chaos.Reset()
		// The "dying process" releases its journal handle (white-box:
		// the test lives in package source).
		if integ.jw != nil {
			integ.jw.Close()
		}
		next, err := Recover(comp, snapPath, jpath)
		if err != nil {
			t.Fatalf("crash %d: recovery failed: %v", crashes, err)
		}
		integ = next
		integ.SetResyncHook(func(src string, from uint64) error {
			s, ok := env.Source(src)
			if !ok {
				return fmt.Errorf("resync target %q unknown", src)
			}
			return s.Resend(from)
		})
	}

	// Mirror of the true Sale content, for generating valid deletes.
	var saleRows [][2]string
	nextItem, nextClerk := 0, 0
	sales, _ := env.Source("sales")
	company, _ := env.Source("company")

	const ops = 400
	for i := 0; i < ops; i++ {
		// Occasionally arm a crash point for the near future.
		if rng.Float64() < 0.06 {
			p := crashPoints[rng.Intn(len(crashPoints))]
			chaos.Arm(p, uint64(1+rng.Intn(3)), nil)
		}

		switch r := rng.Float64(); {
		case r < 0.55: // insert a sale
			item := fmt.Sprintf("item-%d", nextItem)
			clerk := fmt.Sprintf("clerk-%d", rng.Intn(nextClerk+1))
			nextItem++
			u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_(item), relation.String_(clerk))
			if _, err := sales.Apply(u); err != nil {
				t.Fatal(err)
			}
			saleRows = append(saleRows, [2]string{item, clerk})
		case r < 0.7 && len(saleRows) > 0: // delete a sale
			k := rng.Intn(len(saleRows))
			row := saleRows[k]
			saleRows = append(saleRows[:k], saleRows[k+1:]...)
			u := catalog.NewUpdate().MustDelete("Sale", sc.DB, relation.String_(row[0]), relation.String_(row[1]))
			if _, err := sales.Apply(u); err != nil {
				t.Fatal(err)
			}
		default: // hire a clerk
			clerk := fmt.Sprintf("clerk-%d", nextClerk)
			nextClerk++
			u := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_(clerk), relation.Int(int64(20+rng.Intn(40))))
			if _, err := company.Apply(u); err != nil {
				t.Fatal(err)
			}
		}

		// Any fired fault is a crash: the process hosting the integrator
		// dies and restarts from its durable state.
		for _, p := range crashPoints {
			if chaos.Fired(p) {
				recover_()
				break
			}
		}

		// Periodic checkpoint (which may itself hit an armed point and
		// "crash" the process).
		if i%37 == 36 {
			if err := integ.Checkpoint(snapPath); err != nil {
				recover_()
			}
		}
	}

	// Settle: stop injecting faults, drain the channels directly into the
	// final integrator, and close every gap through the reporting channel.
	chaos.Reset()
	for _, s := range env.Sources {
		s.OnUpdate(func(n Notification) { integ.Receive(n) })
	}
	for _, ch := range channels {
		ch.SetDeliver(func(n Notification) { integ.Receive(n) })
		ch.Flush()
	}
	marksOf := func(s *Source) uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.seq
	}
	settled := false
	for round := 0; round < 50; round++ {
		if err := integ.Redrive(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := integ.Resync(); err != nil {
			t.Fatal(err)
		}
		// Reports refused under backpressure or lost on a crashed journal
		// append leave silent holes (no later report buffered): detect
		// them by comparing watermarks with the true source sequences and
		// re-request — still via the reporting channel.
		done := true
		marks := integ.Marks()
		for _, s := range env.Sources {
			if want := marksOf(s); marks[s.Name()] < want {
				done = false
				if err := s.Resend(marks[s.Name()] + 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if done && integ.Flush() && len(integ.Wedged()) == 0 {
			settled = true
			break
		}
	}
	if !settled {
		t.Fatalf("pipeline did not settle: gaps=%v wedged=%v marks=%v dead=%d",
			integ.Gaps(), integ.Wedged(), integ.Marks(), len(integ.DeadLetters()))
	}

	// One final crash-recovery after a checkpoint, to assert the durable
	// state alone reproduces the settled warehouse.
	if err := integ.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	preCrash := fingerprintAll(integ.Warehouse())
	recover_()
	if got := fingerprintAll(integ.Warehouse()); got != preCrash {
		t.Fatalf("final recovery diverged from checkpointed state:\ngot:\n%s\nwant:\n%s", got, preCrash)
	}

	// The property: the maintained warehouse equals an oracle
	// recomputation from the sources' true combined state.
	combined, err := env.CombinedState()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := comp.MaterializeWarehouse(combined)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range oracle {
		got, ok := integ.Warehouse().Relation(name)
		if !ok {
			t.Fatalf("warehouse lost relation %s", name)
		}
		if !got.Equal(want) {
			t.Errorf("relation %s diverged from oracle after %d crashes:\ngot  %v\nwant %v",
				name, crashes, got, want)
		}
	}

	// Exactly-once: every source report applied, none twice (watermarks
	// equal the sources' sequence counters; set semantics plus the
	// oracle equality above rule out double application).
	marks := integ.Marks()
	for _, s := range env.Sources {
		if want := marksOf(s); marks[s.Name()] != want {
			t.Errorf("source %s: watermark %d, source seq %d", s.Name(), marks[s.Name()], want)
		}
	}

	// Update independence survived every fault: no source was ever
	// queried, not even once, not even during recovery.
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Errorf("pipeline issued %d ad-hoc source queries", n)
	}
	t.Logf("soak seed=%d: %d ops, %d crashes, %d dead letters, settled and verified",
		seed, ops, crashes, len(integ.DeadLetters()))
}
