// Package catalog models the paper's database side: the fixed set
// D = {R1..Rn} of relation schemata (possibly coming from several source
// databases), database states d = ⟨r1..rn⟩ over D, and updates u that turn
// a state d into a state d' by inserting and deleting tuples per relation
// (the paper treats modifications as delete+insert, footnote 1).
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/constraint"
	"dwcomplement/internal/relation"
)

// Database is the schema set D together with its integrity constraints:
// per-schema keys (on the schemata) and inclusion dependencies.
type Database struct {
	schemas map[string]*relation.Schema
	order   []string // declaration order, for deterministic iteration
	cons    *constraint.Set
}

// NewDatabase returns an empty database definition.
func NewDatabase() *Database {
	return &Database{
		schemas: make(map[string]*relation.Schema),
		cons:    constraint.NewSet(),
	}
}

// AddSchema registers a relation schema. It returns an error on duplicate
// names or invalid schemata.
func (db *Database) AddSchema(s *relation.Schema) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if _, dup := db.schemas[s.Name]; dup {
		return fmt.Errorf("catalog: duplicate schema %s", s.Name)
	}
	db.schemas[s.Name] = s.Clone()
	db.order = append(db.order, s.Name)
	return nil
}

// MustAddSchema is AddSchema that panics on error, for fluent setup code.
func (db *Database) MustAddSchema(s *relation.Schema) *Database {
	if err := db.AddSchema(s); err != nil {
		panic(err)
	}
	return db
}

// AddIND declares the inclusion dependency π_attrs(from) ⊆ π_attrs(to).
// A dependency that fails validation (unknown schema, attributes outside
// a side, cycle) is rolled back, leaving the database as it was.
func (db *Database) AddIND(from, to string, attrs ...string) error {
	n := db.cons.Len()
	if err := db.cons.AddIND(from, to, attrs...); err != nil {
		return err
	}
	if err := db.cons.Validate(db.schemas); err != nil {
		if db.cons.Len() > n {
			db.cons.DropLastIND()
		}
		return err
	}
	return nil
}

// MustAddIND is AddIND that panics on error.
func (db *Database) MustAddIND(from, to string, attrs ...string) *Database {
	if err := db.AddIND(from, to, attrs...); err != nil {
		panic(err)
	}
	return db
}

// AddDomain declares a domain constraint: every tuple of rel satisfies
// cond on every valid state (Section 5's per-site data ownership is the
// motivating case).
func (db *Database) AddDomain(rel string, cond algebra.Cond) error {
	if err := db.cons.AddDomain(rel, cond); err != nil {
		return err
	}
	if err := db.cons.Validate(db.schemas); err != nil {
		db.cons.DropLastDomain()
		return err
	}
	return nil
}

// MustAddDomain is AddDomain that panics on error.
func (db *Database) MustAddDomain(rel string, cond algebra.Cond) *Database {
	if err := db.AddDomain(rel, cond); err != nil {
		panic(err)
	}
	return db
}

// AddForeignKey declares that attrs of from reference the key of to: it
// validates that attrs equals to's key and records the corresponding IND.
// This is the paper's foreign-key case ("combinations of key and inclusion
// constraints").
func (db *Database) AddForeignKey(from string, attrs []string, to string) error {
	target, ok := db.schemas[to]
	if !ok {
		return fmt.Errorf("catalog: foreign key references unknown schema %s", to)
	}
	if !target.HasKey() {
		return fmt.Errorf("catalog: foreign key target %s has no key", to)
	}
	if !relation.NewAttrSet(attrs...).Equal(target.KeySet()) {
		return fmt.Errorf("catalog: foreign key attributes %v do not match key %v of %s",
			relation.NewAttrSet(attrs...), target.KeySet(), to)
	}
	return db.AddIND(from, to, attrs...)
}

// Schema returns the named schema and whether it exists.
func (db *Database) Schema(name string) (*relation.Schema, bool) {
	s, ok := db.schemas[name]
	return s, ok
}

// Schemas returns the schema map keyed by name. Callers must not modify it.
func (db *Database) Schemas() map[string]*relation.Schema { return db.schemas }

// Names returns the schema names in declaration order.
func (db *Database) Names() []string { return append([]string(nil), db.order...) }

// Constraints returns the inclusion-dependency set. Callers must not
// modify it directly; use AddIND.
func (db *Database) Constraints() *constraint.Set { return db.cons }

// Validate re-checks all schemata and constraints.
func (db *Database) Validate() error {
	for _, name := range db.order {
		if err := db.schemas[name].Validate(); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
	}
	return db.cons.Validate(db.schemas)
}

// BaseAttrs implements algebra.Resolver over the base schemata.
func (db *Database) BaseAttrs(name string) (relation.AttrSet, bool) {
	s, ok := db.schemas[name]
	if !ok {
		return nil, false
	}
	return s.AttrSet(), true
}

// NewState returns an empty database state over D: one empty relation per
// schema, in schema attribute order.
func (db *Database) NewState() *State {
	st := &State{db: db, rels: make(map[string]*relation.Relation, len(db.order))}
	for _, name := range db.order {
		st.rels[name] = relation.NewFromSchema(db.schemas[name])
	}
	return st
}

// String renders the database definition in DSL form.
func (db *Database) String() string {
	var b strings.Builder
	for _, name := range db.order {
		b.WriteString("relation ")
		b.WriteString(db.schemas[name].String())
		b.WriteByte('\n')
	}
	for _, d := range db.cons.INDs() {
		b.WriteString("ind ")
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// State is a database state d = ⟨r1..rn⟩ over a Database.
type State struct {
	db   *Database
	rels map[string]*relation.Relation
}

// Database returns the owning database definition.
func (st *State) Database() *Database { return st.db }

// Relation implements algebra.State.
func (st *State) Relation(name string) (*relation.Relation, bool) {
	r, ok := st.rels[name]
	return r, ok
}

// MustRelation returns the named relation, panicking on unknown names.
func (st *State) MustRelation(name string) *relation.Relation {
	r, ok := st.rels[name]
	if !ok {
		panic(fmt.Sprintf("catalog: state has no relation %q", name))
	}
	return r
}

// Insert adds a tuple to the named relation, with type checking against
// the schema. It reports whether the tuple was new.
func (st *State) Insert(name string, t relation.Tuple) (bool, error) {
	sc, ok := st.db.schemas[name]
	if !ok {
		return false, fmt.Errorf("catalog: unknown relation %q: %w", name, algebra.ErrUnknownRelation)
	}
	if len(t) != len(sc.Attrs) {
		return false, fmt.Errorf("catalog: arity mismatch inserting into %s: got %d values, want %d: %w", name, len(t), len(sc.Attrs), relation.ErrSchemaMismatch)
	}
	for i, v := range t {
		if !v.CheckKind(sc.Attrs[i].Type) {
			return false, fmt.Errorf("catalog: value %s (kind %s) not valid for attribute %s %s of %s",
				v, v.Kind(), sc.Attrs[i].Name, sc.Attrs[i].Type, name)
		}
	}
	return st.rels[name].Insert(t), nil
}

// MustInsert is Insert that panics on error, for fixtures.
func (st *State) MustInsert(name string, vals ...relation.Value) *State {
	if _, err := st.Insert(name, relation.Tuple(vals)); err != nil {
		panic(err)
	}
	return st
}

// Delete removes a tuple from the named relation; it reports whether the
// tuple was present.
func (st *State) Delete(name string, t relation.Tuple) (bool, error) {
	r, ok := st.rels[name]
	if !ok {
		return false, fmt.Errorf("catalog: unknown relation %q: %w", name, algebra.ErrUnknownRelation)
	}
	return r.Delete(t), nil
}

// Check verifies the state against all declared constraints.
func (st *State) Check() error {
	return constraint.CheckState(st.db.schemas, st.db.cons, st.rels)
}

// Clone returns a deep copy sharing the database definition.
func (st *State) Clone() *State {
	c := &State{db: st.db, rels: make(map[string]*relation.Relation, len(st.rels))}
	for name, r := range st.rels {
		c.rels[name] = r.Clone()
	}
	return c
}

// Equal reports whether two states over the same database have identical
// contents.
func (st *State) Equal(o *State) bool {
	if len(st.rels) != len(o.rels) {
		return false
	}
	for name, r := range st.rels {
		or, ok := o.rels[name]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// Fingerprint returns an order-independent identity of the whole state,
// used by the injectivity experiments (Proposition 2.1).
func (st *State) Fingerprint() string {
	names := make([]string, 0, len(st.rels))
	for n := range st.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(st.rels[n].Fingerprint())
		b.WriteByte('#')
	}
	return b.String()
}

// Size returns the total number of tuples across all relations.
func (st *State) Size() int {
	n := 0
	for _, r := range st.rels {
		n += r.Len()
	}
	return n
}

// String renders every relation of the state as a table, in declaration
// order.
func (st *State) String() string {
	var b strings.Builder
	for _, name := range st.db.order {
		fmt.Fprintf(&b, "%s:\n%s\n", name, st.rels[name])
	}
	return b.String()
}
