package catalog

import (
	"fmt"
	"sort"
	"strings"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

// Update is the paper's update u over D: per-relation sets of tuples to
// insert and to delete. Applying u to a state d yields the state d' of
// Figure 3. Modifications are expressed as delete+insert (footnote 1).
type Update struct {
	ins map[string]*relation.Relation
	del map[string]*relation.Relation
}

// NewUpdate returns an empty update.
func NewUpdate() *Update {
	return &Update{
		ins: make(map[string]*relation.Relation),
		del: make(map[string]*relation.Relation),
	}
}

// Insert schedules a tuple insertion into the named relation. The tuple is
// given in the schema's attribute order of the relation set it will apply
// to; attribute order is fixed when the first tuple for a relation is
// scheduled via the attrs parameter of bucket.
func (u *Update) Insert(name string, db *Database, t relation.Tuple) error {
	r, err := u.bucket(u.ins, name, db)
	if err != nil {
		return err
	}
	if len(t) != r.Arity() {
		return fmt.Errorf("catalog: update insert arity mismatch for %s: %w", name, relation.ErrSchemaMismatch)
	}
	r.Insert(t)
	return nil
}

// Delete schedules a tuple deletion from the named relation.
func (u *Update) Delete(name string, db *Database, t relation.Tuple) error {
	r, err := u.bucket(u.del, name, db)
	if err != nil {
		return err
	}
	if len(t) != r.Arity() {
		return fmt.Errorf("catalog: update delete arity mismatch for %s: %w", name, relation.ErrSchemaMismatch)
	}
	r.Insert(t)
	return nil
}

// MustInsert is Insert that panics on error.
func (u *Update) MustInsert(name string, db *Database, vals ...relation.Value) *Update {
	if err := u.Insert(name, db, relation.Tuple(vals)); err != nil {
		panic(err)
	}
	return u
}

// MustDelete is Delete that panics on error.
func (u *Update) MustDelete(name string, db *Database, vals ...relation.Value) *Update {
	if err := u.Delete(name, db, relation.Tuple(vals)); err != nil {
		panic(err)
	}
	return u
}

func (u *Update) bucket(m map[string]*relation.Relation, name string, db *Database) (*relation.Relation, error) {
	if r, ok := m[name]; ok {
		return r, nil
	}
	sc, ok := db.Schema(name)
	if !ok {
		return nil, fmt.Errorf("catalog: update references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
	}
	r := relation.NewFromSchema(sc)
	m[name] = r
	return r, nil
}

// Inserts returns the scheduled insertions for the named relation (nil if
// none).
func (u *Update) Inserts(name string) *relation.Relation { return u.ins[name] }

// Deletes returns the scheduled deletions for the named relation (nil if
// none).
func (u *Update) Deletes(name string) *relation.Relation { return u.del[name] }

// Touched returns the sorted names of relations with scheduled changes.
func (u *Update) Touched() []string {
	set := relation.NewAttrSet()
	for n := range u.ins {
		set[n] = struct{}{}
	}
	for n := range u.del {
		set[n] = struct{}{}
	}
	return set.Sorted()
}

// IsEmpty reports whether the update schedules no changes.
func (u *Update) IsEmpty() bool {
	for _, r := range u.ins {
		if !r.IsEmpty() {
			return false
		}
	}
	for _, r := range u.del {
		if !r.IsEmpty() {
			return false
		}
	}
	return true
}

// Size returns the total number of scheduled tuple changes.
func (u *Update) Size() int {
	n := 0
	for _, r := range u.ins {
		n += r.Len()
	}
	for _, r := range u.del {
		n += r.Len()
	}
	return n
}

// Normalize returns an equivalent update relative to the given pre-state,
// with the paper-standard properties the maintenance delta rules assume:
// scheduled insertions that are already present in d are dropped,
// scheduled deletions of absent tuples are dropped, and a tuple scheduled
// for both insert and delete is treated as a no-op and dropped from both
// sides.
func (u *Update) Normalize(st *State) *Update {
	n := NewUpdate()
	for name, ins := range u.ins {
		cur := st.MustRelation(name)
		del := u.del[name]
		out := relation.NewFromSchema(mustSchema(st.db, name))
		for t := range ins.All() {
			if del != nil && del.ContainsAligned(t, ins) && !cur.ContainsAligned(t, ins) {
				continue // insert+delete of an absent tuple: no-op
			}
			if cur.ContainsAligned(t, ins) {
				continue // already present
			}
			out.Insert(alignTuple(ins, out, t))
		}
		if !out.IsEmpty() {
			n.ins[name] = out
		}
	}
	for name, del := range u.del {
		cur := st.MustRelation(name)
		ins := u.ins[name]
		out := relation.NewFromSchema(mustSchema(st.db, name))
		for t := range del.All() {
			if !cur.ContainsAligned(t, del) {
				continue // not present: nothing to delete
			}
			if ins != nil && ins.ContainsAligned(t, del) {
				continue // delete+re-insert of a present tuple: no-op
			}
			out.Insert(alignTuple(del, out, t))
		}
		if !out.IsEmpty() {
			n.del[name] = out
		}
	}
	return n
}

func mustSchema(db *Database, name string) *relation.Schema {
	sc, ok := db.Schema(name)
	if !ok {
		panic(fmt.Sprintf("catalog: unknown relation %q", name))
	}
	return sc
}

// alignTuple relays tuple t laid out in src's column order into dst's
// column order (equal attribute sets).
func alignTuple(src, dst *relation.Relation, t relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, dst.Arity())
	for i, a := range dst.Attrs() {
		p, ok := src.Pos(a)
		if !ok {
			panic(fmt.Sprintf("catalog: attribute %q missing while aligning update tuple", a))
		}
		out[i] = t[p]
	}
	return out
}

// Apply executes the update on the state in place: deletions first, then
// insertions (the order is immaterial after Normalize). It does not check
// constraints; use ApplyChecked for constraint-enforcing application.
func (u *Update) Apply(st *State) error {
	for name, del := range u.del {
		cur, ok := st.Relation(name)
		if !ok {
			return fmt.Errorf("catalog: update references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
		}
		for t := range del.All() {
			cur.Delete(alignTuple(del, cur, t))
		}
	}
	for name, ins := range u.ins {
		cur, ok := st.Relation(name)
		if !ok {
			return fmt.Errorf("catalog: update references unknown relation %q: %w", name, algebra.ErrUnknownRelation)
		}
		for t := range ins.All() {
			if _, err := st.Insert(name, alignTuple(ins, cur, t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ApplyChecked applies the update to a copy of the state, verifies all
// constraints on the result, and commits it back only when valid. On
// constraint violation the original state is untouched and the violation
// is returned.
func (u *Update) ApplyChecked(st *State) error {
	trial := st.Clone()
	if err := u.Apply(trial); err != nil {
		return err
	}
	if err := trial.Check(); err != nil {
		return err
	}
	st.rels = trial.rels
	return nil
}

// String renders the update as "+R(a, b)" / "-R(a, b)" lines, sorted.
func (u *Update) String() string {
	var lines []string
	for name, r := range u.ins {
		for _, t := range r.SortedTuples() {
			lines = append(lines, "+"+name+tupleString(t))
		}
	}
	for name, r := range u.del {
		for _, t := range r.SortedTuples() {
			lines = append(lines, "-"+name+tupleString(t))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func tupleString(t relation.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.Literal()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
