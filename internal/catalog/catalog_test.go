package catalog

import (
	"strings"
	"testing"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/relation"
)

// figure1DB builds the paper's Figure 1 database: Sale(item, clerk) and
// Emp(clerk, age) with key clerk.
func figure1DB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase().
		MustAddSchema(relation.NewSchema("Sale", "item:string", "clerk:string")).
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	return db
}

func figure1State(t *testing.T, db *Database) *State {
	t.Helper()
	st := db.NewState()
	st.MustInsert("Sale", relation.String_("TV set"), relation.String_("Mary"))
	st.MustInsert("Sale", relation.String_("VCR"), relation.String_("Mary"))
	st.MustInsert("Sale", relation.String_("PC"), relation.String_("John"))
	st.MustInsert("Emp", relation.String_("Mary"), relation.Int(23))
	st.MustInsert("Emp", relation.String_("John"), relation.Int(25))
	st.MustInsert("Emp", relation.String_("Paula"), relation.Int(32))
	return st
}

func TestDatabaseConstruction(t *testing.T) {
	db := figure1DB(t)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := db.Names(); len(got) != 2 || got[0] != "Sale" || got[1] != "Emp" {
		t.Errorf("Names = %v", got)
	}
	if _, ok := db.Schema("Emp"); !ok {
		t.Error("Schema lookup failed")
	}
	if a, ok := db.BaseAttrs("Sale"); !ok || !a.Equal(relation.NewAttrSet("item", "clerk")) {
		t.Errorf("BaseAttrs = %v, %v", a, ok)
	}
	if _, ok := db.BaseAttrs("Nope"); ok {
		t.Error("BaseAttrs resolved unknown name")
	}
	if err := db.AddSchema(relation.NewSchema("Sale", "x")); err == nil {
		t.Error("duplicate schema accepted")
	}
	s := db.String()
	if !strings.Contains(s, "relation Sale(item string, clerk string)") ||
		!strings.Contains(s, "key(clerk)") {
		t.Errorf("String = %q", s)
	}
}

func TestINDAndForeignKey(t *testing.T) {
	db := figure1DB(t)
	if err := db.AddIND("Sale", "Emp", "clerk"); err != nil {
		t.Fatal(err)
	}
	if db.Constraints().Len() != 1 {
		t.Error("IND not recorded")
	}

	fk := figure1DB(t)
	if err := fk.AddForeignKey("Sale", []string{"clerk"}, "Emp"); err != nil {
		t.Fatal(err)
	}
	if !fk.Constraints().Implies("Sale", "Emp", relation.NewAttrSet("clerk")) {
		t.Error("foreign key did not record IND")
	}
	if err := fk.AddForeignKey("Sale", []string{"item"}, "Emp"); err == nil {
		t.Error("foreign key with wrong attributes accepted")
	}
	if err := fk.AddForeignKey("Sale", []string{"clerk"}, "Nope"); err == nil {
		t.Error("foreign key to unknown schema accepted")
	}
	noKey := NewDatabase().
		MustAddSchema(relation.NewSchema("A", "x")).
		MustAddSchema(relation.NewSchema("B", "x"))
	if err := noKey.AddForeignKey("A", []string{"x"}, "B"); err == nil {
		t.Error("foreign key to keyless schema accepted")
	}
}

func TestStateInsertTypeChecking(t *testing.T) {
	db := figure1DB(t)
	st := db.NewState()
	if _, err := st.Insert("Emp", relation.Tuple{relation.String_("Mary"), relation.String_("old")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := st.Insert("Emp", relation.Tuple{relation.String_("Mary")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := st.Insert("Nope", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("unknown relation accepted")
	}
	ok, err := st.Insert("Emp", relation.Tuple{relation.String_("Mary"), relation.Int(23)})
	if err != nil || !ok {
		t.Errorf("valid insert failed: %v %v", ok, err)
	}
	ok, err = st.Insert("Emp", relation.Tuple{relation.String_("Mary"), relation.Int(23)})
	if err != nil || ok {
		t.Error("duplicate insert must report false")
	}
}

func TestStateEvalIntegration(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	sold := algebra.MustEval(algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")), st)
	if sold.Len() != 3 {
		t.Errorf("|Sold| = %d", sold.Len())
	}
}

func TestStateCloneEqualFingerprint(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	c := st.Clone()
	if !st.Equal(c) || st.Fingerprint() != c.Fingerprint() {
		t.Error("clone differs")
	}
	c.MustInsert("Emp", relation.String_("Zoe"), relation.Int(40))
	if st.Equal(c) || st.Fingerprint() == c.Fingerprint() {
		t.Error("state mutation not reflected")
	}
	if st.Size() != 6 || c.Size() != 7 {
		t.Errorf("Size = %d, %d", st.Size(), c.Size())
	}
}

func TestStateCheck(t *testing.T) {
	db := figure1DB(t)
	db.MustAddIND("Sale", "Emp", "clerk")
	st := figure1State(t, db)
	if err := st.Check(); err != nil {
		t.Errorf("consistent state rejected: %v", err)
	}
	st.MustInsert("Sale", relation.String_("Car"), relation.String_("Ghost"))
	if err := st.Check(); err == nil {
		t.Error("IND violation not detected")
	}
}

func TestUpdateApply(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	u := NewUpdate().
		MustInsert("Sale", db, relation.String_("Computer"), relation.String_("Paula")).
		MustDelete("Sale", db, relation.String_("VCR"), relation.String_("Mary"))
	if u.IsEmpty() || u.Size() != 2 {
		t.Errorf("update bookkeeping wrong: %v %d", u.IsEmpty(), u.Size())
	}
	if got := u.Touched(); len(got) != 1 || got[0] != "Sale" {
		t.Errorf("Touched = %v", got)
	}
	if err := u.Apply(st); err != nil {
		t.Fatal(err)
	}
	sale := st.MustRelation("Sale")
	if !sale.Contains(relation.Tuple{relation.String_("Computer"), relation.String_("Paula")}) {
		t.Error("insert lost")
	}
	if sale.Contains(relation.Tuple{relation.String_("VCR"), relation.String_("Mary")}) {
		t.Error("delete lost")
	}
	if sale.Len() != 3 {
		t.Errorf("|Sale| = %d", sale.Len())
	}
}

func TestUpdateNormalize(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	u := NewUpdate().
		// Already present: should be dropped.
		MustInsert("Sale", db, relation.String_("PC"), relation.String_("John")).
		// Genuinely new.
		MustInsert("Sale", db, relation.String_("Computer"), relation.String_("Paula")).
		// Absent: delete is dropped.
		MustDelete("Sale", db, relation.String_("Nothing"), relation.String_("Nobody")).
		// Present: kept.
		MustDelete("Sale", db, relation.String_("VCR"), relation.String_("Mary"))
	n := u.Normalize(st)
	if n.Size() != 2 {
		t.Fatalf("normalized size = %d, want 2\n%s", n.Size(), n)
	}
	ins, del := n.Inserts("Sale"), n.Deletes("Sale")
	if ins == nil || ins.Len() != 1 || !ins.Contains(relation.Tuple{relation.String_("Computer"), relation.String_("Paula")}) {
		t.Errorf("normalized inserts = %v", ins)
	}
	if del == nil || del.Len() != 1 || !del.Contains(relation.Tuple{relation.String_("VCR"), relation.String_("Mary")}) {
		t.Errorf("normalized deletes = %v", del)
	}
}

func TestUpdateNormalizeInsertDeleteConflict(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	// Insert+delete of an absent tuple: both dropped.
	u := NewUpdate().
		MustInsert("Sale", db, relation.String_("X"), relation.String_("Y")).
		MustDelete("Sale", db, relation.String_("X"), relation.String_("Y"))
	if n := u.Normalize(st); !n.IsEmpty() {
		t.Errorf("conflicting changes on absent tuple not dropped:\n%s", n)
	}
	// Insert+delete of a present tuple: also a no-op.
	v := NewUpdate().
		MustInsert("Sale", db, relation.String_("PC"), relation.String_("John")).
		MustDelete("Sale", db, relation.String_("PC"), relation.String_("John"))
	if n := v.Normalize(st); !n.IsEmpty() {
		t.Errorf("conflicting changes on present tuple not dropped:\n%s", n)
	}
}

func TestApplyChecked(t *testing.T) {
	db := figure1DB(t)
	db.MustAddIND("Sale", "Emp", "clerk")
	st := figure1State(t, db)
	before := st.Fingerprint()

	bad := NewUpdate().MustInsert("Sale", db, relation.String_("Car"), relation.String_("Ghost"))
	if err := bad.ApplyChecked(st); err == nil {
		t.Error("constraint-violating update accepted")
	}
	if st.Fingerprint() != before {
		t.Error("failed ApplyChecked mutated the state")
	}

	good := NewUpdate().MustInsert("Sale", db, relation.String_("Car"), relation.String_("Mary"))
	if err := good.ApplyChecked(st); err != nil {
		t.Errorf("valid update rejected: %v", err)
	}
	if !st.MustRelation("Sale").Contains(relation.Tuple{relation.String_("Car"), relation.String_("Mary")}) {
		t.Error("valid update not applied")
	}
}

func TestUpdateString(t *testing.T) {
	db := figure1DB(t)
	u := NewUpdate().
		MustInsert("Sale", db, relation.String_("Computer"), relation.String_("Paula")).
		MustDelete("Emp", db, relation.String_("Mary"), relation.Int(23))
	s := u.String()
	if !strings.Contains(s, "+Sale('Computer', 'Paula')") || !strings.Contains(s, "-Emp('Mary', 23)") {
		t.Errorf("String = %q", s)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := figure1DB(t)
	u := NewUpdate()
	if err := u.Insert("Nope", db, relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := u.Insert("Sale", db, relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := u.Delete("Sale", db, relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("delete arity mismatch accepted")
	}
}

func TestStateString(t *testing.T) {
	db := figure1DB(t)
	st := figure1State(t, db)
	s := st.String()
	for _, want := range []string{"Sale:", "Emp:", "Paula", "TV set"} {
		if !strings.Contains(s, want) {
			t.Errorf("State.String missing %q", want)
		}
	}
}

func TestAccessorsAndDelete(t *testing.T) {
	db := figure1DB(t)
	if len(db.Schemas()) != 2 {
		t.Error("Schemas accessor")
	}
	st := figure1State(t, db)
	if st.Database() != db {
		t.Error("Database accessor")
	}
	ok, err := st.Delete("Emp", relation.Tuple{relation.String_("Paula"), relation.Int(32)})
	if err != nil || !ok {
		t.Errorf("Delete = %v, %v", ok, err)
	}
	ok, err = st.Delete("Emp", relation.Tuple{relation.String_("Paula"), relation.Int(32)})
	if err != nil || ok {
		t.Error("double delete reported present")
	}
	if _, err := st.Delete("Nope", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("delete from unknown relation accepted")
	}
	// Domain declaration through the catalog.
	if err := db.AddDomain("Emp", algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(0))); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDomain("Nope", algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(0))); err == nil {
		t.Error("domain on unknown relation accepted")
	}
	assertPanicsCatalog(t, func() {
		db.MustAddDomain("Nope", algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(0)))
	})
	assertPanicsCatalog(t, func() { db.MustAddSchema(relation.NewSchema("Emp", "x")) })
	assertPanicsCatalog(t, func() { db.MustAddIND("Nope", "Emp", "clerk") })
	assertPanicsCatalog(t, func() { figure1State(t, db).MustInsert("Nope", relation.Int(1)) })
	assertPanicsCatalog(t, func() { NewUpdate().MustInsert("Nope", db, relation.Int(1)) })
	assertPanicsCatalog(t, func() { NewUpdate().MustDelete("Nope", db, relation.Int(1)) })
}

func assertPanicsCatalog(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
