package remote

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets exactly one probe request through; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen fails fast without touching the network until the
	// cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a per-source circuit breaker with the classic three-state
// machine. Closed counts consecutive failures and trips to open at the
// threshold; open fails fast until the cooldown elapses, then admits a
// single half-open probe; a successful probe closes the circuit, a
// failed one re-opens it and restarts the cooldown. The clock is
// injectable so state transitions are deterministically testable.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool
	opens     int // transitions into open
	cycles    int // completed open → half-open → closed recoveries
	now       func() time.Time
}

// NewBreaker builds a closed breaker that opens after threshold
// consecutive failures (minimum 1) and admits a probe after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock injects a clock for deterministic tests.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown has elapsed, at which point the
// breaker moves to half-open and admits exactly one probe; further
// calls fail fast until that probe reports its outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a completed request: it resets the failure count and,
// from half-open, closes the circuit (completing one recovery cycle).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.cycles++
	}
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed request: from closed it counts toward the
// threshold; a failed half-open probe re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Late failure from a request admitted before the trip: the
		// circuit is already open, nothing more to record.
	}
	b.probing = false
}

// Abandon reports that an admitted request was deliberately canceled
// (shutdown, a hedged loser) before completing: it releases the
// half-open probe slot without counting success or failure, so a
// canceled probe cannot wedge the breaker half-open or re-trip it.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// trip moves to open and stamps the cooldown start. Caller holds mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opens++
	b.failures = 0
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Cycles returns how many full open → half-open → closed recoveries
// have completed — the soak asserts at least one.
func (b *Breaker) Cycles() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cycles
}
