package remote

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/source"
	"dwcomplement/internal/workload"
)

// BenchmarkRemoteRefresh measures the end-to-end latency of one source
// transaction reaching the maintained warehouse — first with the
// in-process wiring NewEnvironment sets up (the apply itself drives the
// refresh synchronously), then with the source behind a real loopback
// HTTP server and the resilient client in between (long-poll pickup,
// wire decode, then the same refresh). The difference is the cost of
// the wire.
func BenchmarkRemoteRefresh(b *testing.B) {
	b.Run("inproc", func(b *testing.B) {
		env, sales := benchEnv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchInsert(b, sales, i)
		}
		b.StopTimer()
		benchSettled(b, env, sales)
	})
	b.Run("remote", func(b *testing.B) {
		env, sales := benchEnv(b)
		integ := env.Integrator
		srv := NewSourceServer(sales) // displaces the in-process callback
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c := NewClient("sales", ts.URL, sales.Snapshot().Database(), Config{
			AttemptTimeout: time.Second,
			MaxRetries:     -1,
			PollWait:       250 * time.Millisecond,
			PollInterval:   50 * time.Microsecond,
		})
		c.OnUpdate(integ.Receive)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		c.Start(ctx)
		defer c.Close()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq := benchInsert(b, sales, i)
			for integ.Marks()["sales"] < seq {
				time.Sleep(10 * time.Microsecond)
			}
		}
		b.StopTimer()
		benchSettled(b, env, sales)
	})
}

// benchEnv builds the Figure 1 pipeline with a single sales source
// owning Sale (Emp stays static, so every insert touches the join).
func benchEnv(b *testing.B) (*source.Environment, *source.Source) {
	b.Helper()
	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := source.NewEnvironment(comp, map[string][]string{
		"sales":   {"Sale"},
		"company": {"Emp"},
	})
	if err != nil {
		b.Fatal(err)
	}
	srcs, _ := env.Source("sales")
	return env, srcs
}

// benchInsert applies one unique Sale row and returns its Seq.
func benchInsert(b *testing.B, sales *source.Source, i int) uint64 {
	b.Helper()
	db := sales.Snapshot().Database()
	u := catalog.NewUpdate().MustInsert("Sale", db,
		relation.String_(fmt.Sprintf("bench-item-%d", i)), relation.String_("Mary"))
	seq, err := sales.Apply(u)
	if err != nil {
		b.Fatal(err)
	}
	return seq
}

// benchSettled asserts the pipeline applied everything exactly once
// without ever querying the source — a benchmark that silently dropped
// work would report a meaningless latency.
func benchSettled(b *testing.B, env *source.Environment, sales *source.Source) {
	b.Helper()
	if marks := env.Integrator.Marks(); marks["sales"] != sales.Seq() {
		b.Fatalf("pipeline lost work: mark %d, source seq %d", marks["sales"], sales.Seq())
	}
	if n := env.TotalQueryAttempts(); n != 0 {
		b.Fatalf("pipeline issued %d ad-hoc source queries", n)
	}
}
