package remote

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle on an injected clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 100*time.Millisecond)
	b.SetClock(func() time.Time { return now })

	// Closed: failures below the threshold keep passing traffic.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	// A success resets the consecutive count.
	b.Success()
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("failure count survived a success: state = %v", got)
	}

	// Third consecutive failure trips the circuit.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Open fails fast until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	now = now.Add(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a request 1ms early")
	}

	// Cooldown over: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second request while probing")
	}

	// A failed probe re-opens and restarts the cooldown.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request before new cooldown")
	}

	// Second probe succeeds: circuit closes, completing one cycle.
	now = now.Add(101 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if b.Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1", b.Cycles())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic after recovery")
	}
}

// TestBreakerAbandonReleasesProbe: a half-open probe that is canceled
// on purpose (not failed) must free the probe slot — otherwise the
// breaker wedges half-open, rejecting every request forever.
func TestBreakerAbandonReleasesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, 100*time.Millisecond)
	b.SetClock(func() time.Time { return now })

	b.Failure() // threshold 1: trips open
	now = now.Add(101 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	b.Abandon()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after abandoned probe = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("abandoned probe slot was not released")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful replacement probe = %v, want closed", got)
	}
	if b.Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1", b.Cycles())
	}
}

// TestBreakerStateStrings pins the metric/health label names.
func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
	} {
		if got := state.String(); got != want {
			t.Errorf("state %d String() = %q, want %q", state, got, want)
		}
	}
}
