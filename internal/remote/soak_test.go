package remote

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/core"
	"dwcomplement/internal/journal"
	"dwcomplement/internal/obs"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/source"
	"dwcomplement/internal/workload"
)

// TestRemoteChaosSoak is the network twin of the source package's chaos
// soak: the full Figure 1 pipeline runs against real HTTP source
// servers (httptest listeners) through a seeded fault-injecting
// transport that drops connections, loses responses after the server
// handled them (forcing duplicate re-fetches), injects 503s, delays,
// and truncates bodies. Mid-soak one source suffers a total outage long
// enough to trip its client's circuit breaker, then heals; the breaker
// must complete at least one full open → half-open → closed cycle. The
// journaled integrator is crash-recovered from disk alone, and at the
// end the warehouse must equal an oracle recomputation from the
// sources' true combined state, every report applied exactly once,
// every source out of quarantine with staleness back at zero — and the
// sealed sources' ad-hoc query counter still zero.
//
// Seeds follow the DW_CHAOS_SEED convention: unset runs the three fixed
// CI seeds, "random" picks one from the clock and logs it, and a number
// runs exactly that seed.
func TestRemoteChaosSoak(t *testing.T) {
	switch env := os.Getenv("DW_CHAOS_SEED"); env {
	case "":
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) { networkSoak(t, seed) })
		}
	case "random":
		seed := time.Now().UnixNano()
		t.Logf("DW_CHAOS_SEED=%d # reproduce this run", seed)
		networkSoak(t, seed)
	default:
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DW_CHAOS_SEED=%q is neither empty, \"random\", nor a number", env)
		}
		networkSoak(t, seed)
	}
}

// moderateFaults is the steady-state network weather of the soak.
var moderateFaults = chaos.HTTPFaultConfig{
	Drop:         0.10,
	LoseResponse: 0.08,
	Err5xx:       0.08,
	Delay:        0.20,
	MaxDelay:     5 * time.Millisecond,
	PartialBody:  0.05,
}

func networkSoak(t *testing.T, seed int64) {
	chaos.Reset()
	defer chaos.Reset()
	rng := rand.New(rand.NewSource(seed))

	sc := workload.Figure1(false)
	comp := core.MustCompute(sc.DB, sc.Views, core.Proposition22())
	env, err := source.NewEnvironment(comp, map[string][]string{
		"sales":   {"Sale"},
		"company": {"Emp"},
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.snap")
	jpath := filepath.Join(dir, "wal.dwj")
	integ := env.Integrator
	jw, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	integ.AttachJournal(jw)

	// Put each source behind a real HTTP server and a fault-injecting
	// transport; the clients replace the in-process wiring that
	// NewEnvironment set up.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.NewRegistry()
	transports := map[string]*chaos.FaultyTransport{}
	clients := map[string]*Client{}
	for i, s := range env.Sources {
		srv := NewSourceServer(s) // re-registers the notification callback
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		tr := chaos.NewFaultyTransport(seed+int64(100+i), moderateFaults, nil)
		c := NewClient(s.Name(), ts.URL, sc.DB, Config{
			AttemptTimeout:   500 * time.Millisecond,
			MaxRetries:       3,
			BackoffBase:      time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			Seed:             seed + int64(200+i),
			BreakerThreshold: 4,
			BreakerCooldown:  30 * time.Millisecond,
			HedgeDelay:       3 * time.Millisecond,
			PollWait:         50 * time.Millisecond,
			PollInterval:     time.Millisecond,
		})
		c.SetTransport(tr)
		c.SetMetrics(reg)
		c.OnUpdate(integ.Receive)
		transports[s.Name()] = tr
		clients[s.Name()] = c
	}
	integ.SetResyncHook(func(src string, from uint64) error {
		c, ok := clients[src]
		if !ok {
			return fmt.Errorf("resync target %q unknown", src)
		}
		return c.Resend(from)
	})
	for _, c := range clients {
		c.Start(ctx)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Workload: random source transactions, as in the in-process soak.
	var saleRows [][2]string
	nextItem, nextClerk := 0, 0
	sales, _ := env.Source("sales")
	company, _ := env.Source("company")
	applyOne := func() {
		switch r := rng.Float64(); {
		case r < 0.55: // insert a sale
			item := fmt.Sprintf("item-%d", nextItem)
			clerk := fmt.Sprintf("clerk-%d", rng.Intn(nextClerk+1))
			nextItem++
			u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_(item), relation.String_(clerk))
			if _, err := sales.Apply(u); err != nil {
				t.Fatal(err)
			}
			saleRows = append(saleRows, [2]string{item, clerk})
		case r < 0.7 && len(saleRows) > 0: // delete a sale
			k := rng.Intn(len(saleRows))
			row := saleRows[k]
			saleRows = append(saleRows[:k], saleRows[k+1:]...)
			u := catalog.NewUpdate().MustDelete("Sale", sc.DB, relation.String_(row[0]), relation.String_(row[1]))
			if _, err := sales.Apply(u); err != nil {
				t.Fatal(err)
			}
		default: // hire a clerk
			clerk := fmt.Sprintf("clerk-%d", nextClerk)
			nextClerk++
			u := catalog.NewUpdate().MustInsert("Emp", sc.DB, relation.String_(clerk), relation.Int(int64(20+rng.Intn(40))))
			if _, err := company.Apply(u); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase A: steady traffic through moderately lossy weather.
	const phaseAOps = 80
	for i := 0; i < phaseAOps; i++ {
		applyOne()
		if i%37 == 36 {
			if err := integ.Checkpoint(snapPath); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}

	// Phase B: total outage for the sales source — every connection
	// drops until its circuit breaker trips open. Traffic keeps flowing
	// (the server-side log accrues; the client must catch up later).
	salesClient := clients["sales"]
	transports["sales"].SetConfig(chaos.HTTPFaultConfig{Drop: 1.0})
	for i := 0; i < 15; i++ {
		applyOne()
	}
	waitFor(t, 10*time.Second, func() bool { return salesClient.Breaker().Opens() >= 1 })
	if !salesClient.Quarantined() {
		t.Fatal("breaker open but client not quarantined")
	}

	// Phase C: the network heals; after the cooldown the half-open
	// probe must close the circuit — one full breaker cycle.
	transports["sales"].SetConfig(moderateFaults)
	waitFor(t, 10*time.Second, func() bool { return salesClient.Breaker().Cycles() >= 1 })

	// Crash-recovery: stop delivery, rebuild the integrator from
	// snapshot + journal alone, re-wire the clients, and rewind their
	// cursors to the recovered watermarks so undelivered reports are
	// re-fetched (duplicates are deduped by Seq).
	for _, c := range clients {
		c.Close()
	}
	integ, err = source.Recover(comp, snapPath, jpath)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	integ.SetResyncHook(func(src string, from uint64) error {
		c, ok := clients[src]
		if !ok {
			return fmt.Errorf("resync target %q unknown", src)
		}
		return c.Resend(from)
	})
	marks := integ.Marks()
	for name, c := range clients {
		c.OnUpdate(integ.Receive)
		c.Rewind(marks[name])
		c.Start(ctx)
	}

	// Phase D: more traffic through the recovered pipeline.
	for i := 0; i < 40; i++ {
		applyOne()
	}

	// Settle: perfect weather; drive the pipeline until every report is
	// applied, every client is healthy, and staleness is back to zero.
	for _, tr := range transports {
		tr.SetEnabled(false)
	}
	settled := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := integ.Redrive(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := integ.Resync(); err != nil {
			t.Fatal(err)
		}
		done := true
		marks := integ.Marks()
		for _, s := range env.Sources {
			if marks[s.Name()] < s.Seq() {
				done = false
			}
		}
		for _, c := range clients {
			if c.Quarantined() || c.Staleness() != 0 {
				done = false
			}
		}
		if done && integ.Flush() && len(integ.Wedged()) == 0 {
			settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !settled {
		t.Fatalf("pipeline did not settle: gaps=%v wedged=%v marks=%v cursors=[sales:%d company:%d]",
			integ.Gaps(), integ.Wedged(), integ.Marks(),
			clients["sales"].Cursor(), clients["company"].Cursor())
	}

	// The breaker completed at least one full cycle during the soak.
	if salesClient.Breaker().Opens() < 1 || salesClient.Breaker().Cycles() < 1 {
		t.Fatalf("breaker opens=%d cycles=%d, want at least one full open → half-open → closed cycle",
			salesClient.Breaker().Opens(), salesClient.Breaker().Cycles())
	}

	// Final crash-recovery: the durable state alone must reproduce the
	// settled warehouse.
	for _, c := range clients {
		c.Close()
	}
	if err := integ.Checkpoint(snapPath); err != nil {
		t.Fatal(err)
	}
	preCrash := soakFingerprint(integ)
	recovered, err := source.Recover(comp, snapPath, jpath)
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	if got := soakFingerprint(recovered); got != preCrash {
		t.Fatalf("final recovery diverged:\ngot:\n%s\nwant:\n%s", got, preCrash)
	}

	// The property: the maintained warehouse equals an oracle
	// recomputation from the sources' true combined state.
	combined, err := env.CombinedState()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := comp.MaterializeWarehouse(combined)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range oracle {
		got, ok := recovered.Warehouse().Relation(name)
		if !ok {
			t.Fatalf("warehouse lost relation %s", name)
		}
		if !got.Equal(want) {
			t.Errorf("relation %s diverged from oracle:\ngot  %v\nwant %v", name, got, want)
		}
	}

	// Exactly-once: watermarks equal the sources' sequence counters.
	marks = recovered.Marks()
	for _, s := range env.Sources {
		if want := s.Seq(); marks[s.Name()] != want {
			t.Errorf("source %s: watermark %d, source seq %d", s.Name(), marks[s.Name()], want)
		}
	}

	// Update independence survived the wire: no source was ever queried
	// — not by the clients, not during recovery, not while quarantined.
	if n := env.TotalQueryAttempts(); n != 0 {
		t.Errorf("pipeline issued %d ad-hoc source queries", n)
	}

	salesStats := transports["sales"].Stats()
	t.Logf("soak seed=%d: marks=%v, breaker opens=%d cycles=%d, sales faults=%+v",
		seed, marks, salesClient.Breaker().Opens(), salesClient.Breaker().Cycles(), salesStats)
}

// soakFingerprint captures every warehouse relation's content.
func soakFingerprint(g *source.Integrator) string {
	out := ""
	w := g.Warehouse()
	for _, n := range w.Names() {
		r, _ := w.Relation(n)
		out += fmt.Sprintf("%s=%s\n", n, r.Fingerprint())
	}
	return out
}
