package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/chaos"
	"dwcomplement/internal/obs"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/source"
	"dwcomplement/internal/workload"
)

// fixture builds one sealed Figure 1 source owning Sale, served over a
// real httptest listener.
func fixture(t *testing.T) (workload.Scenario, *source.Source, *httptest.Server) {
	t.Helper()
	sc, src, _, ts := fixtureServer(t)
	return sc, src, ts
}

func fixtureServer(t *testing.T) (workload.Scenario, *source.Source, *SourceServer, *httptest.Server) {
	t.Helper()
	sc := workload.Figure1(false)
	src, err := source.NewSource("sales", sc.DB, true, "Sale")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSourceServer(src)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sc, src, srv, ts
}

// sell applies one Sale insert to src.
func sell(t *testing.T, sc workload.Scenario, src *source.Source, item, clerk string) uint64 {
	t.Helper()
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB, relation.String_(item), relation.String_(clerk))
	seq, err := src.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// quickConfig shrinks every duration so tests run in milliseconds.
func quickConfig() Config {
	return Config{
		AttemptTimeout:   time.Second,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		PollWait:         50 * time.Millisecond,
		PollInterval:     time.Millisecond,
	}
}

// TestServerReportsAndResend covers the wire protocol directly with an
// HTTP client: report ranges, paging fields, resend, and 410 Gone after
// the retained history is trimmed.
func TestServerReportsAndResend(t *testing.T) {
	sc, src, srv, ts := fixtureServer(t)
	for i := 0; i < 3; i++ {
		sell(t, sc, src, fmt.Sprintf("item-%d", i), "Mary")
	}

	get := func(path string) (int, ReportBatch) {
		t.Helper()
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rb ReportBatch
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, rb
	}

	code, rb := get("/reports?from=1")
	if code != http.StatusOK || len(rb.Reports) != 3 || rb.Seq != 3 || rb.Source != "sales" {
		t.Fatalf("reports from 1: code=%d batch=%+v", code, rb)
	}
	for i, wn := range rb.Reports {
		if wn.Seq != uint64(i+1) {
			t.Fatalf("report %d has seq %d", i, wn.Seq)
		}
	}
	code, rb = get("/reports?from=3")
	if code != http.StatusOK || len(rb.Reports) != 1 || rb.Reports[0].Seq != 3 {
		t.Fatalf("reports from 3: code=%d batch=%+v", code, rb)
	}
	code, rb = get("/reports?from=4")
	if code != http.StatusOK || len(rb.Reports) != 0 {
		t.Fatalf("reports past the end: code=%d batch=%+v", code, rb)
	}
	code, rb = get("/resend?from=2")
	if code != http.StatusOK || len(rb.Reports) != 2 {
		t.Fatalf("resend from 2: code=%d batch=%+v", code, rb)
	}

	// Trimmed history answers 410 Gone — the wire form of the
	// in-process "history trimmed" error. Source and server trim from
	// the same watermark.
	src.TrimHistory(2)
	srv.TrimLog(2)
	if code, _ = get("/resend?from=1"); code != http.StatusGone {
		t.Fatalf("resend of trimmed history: code=%d, want 410", code)
	}
	if code, _ = get("/resend?from=3"); code != http.StatusOK {
		t.Fatalf("resend of retained suffix: code=%d, want 200", code)
	}

	if code, _ = get("/reports?from=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad from parameter: code=%d, want 400", code)
	}
}

// TestServerLongPoll: a /reports request with wait blocks until the
// next transaction lands and then returns it.
func TestServerLongPoll(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")

	done := make(chan ReportBatch, 1)
	go func() {
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL+"/reports?from=2&wait=2000", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		var rb ReportBatch
		_ = json.NewDecoder(resp.Body).Decode(&rb)
		done <- rb
	}()

	time.Sleep(20 * time.Millisecond) // let the poller block
	sell(t, sc, src, "VCR", "John")

	select {
	case rb := <-done:
		if len(rb.Reports) != 1 || rb.Reports[0].Seq != 2 {
			t.Fatalf("long-poll returned %+v, want the seq-2 report", rb)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long-poll did not wake on the new report")
	}
}

// TestServerHealth checks the health endpoint's fields.
func TestServerHealth(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")
	req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL+"/healthz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Source != "sales" || h.Seq != 1 || h.Retained != 1 || !h.Sealed {
		t.Fatalf("health = %+v", h)
	}
}

// failFirst is a deterministic transport: the first n requests fail
// with a connection error, the rest pass through.
type failFirst struct {
	mu   sync.Mutex
	n    int
	seen int
}

func (f *failFirst) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.seen++
	fail := f.seen <= f.n
	f.mu.Unlock()
	if fail {
		return nil, errors.New("injected connection failure")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestClientRetriesTransientFailures: a fetch that fails twice succeeds
// on the third attempt within one Resend call, and the retry counter
// records both backoff rounds.
func TestClientRetriesTransientFailures(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")

	cfg := quickConfig()
	cfg.MaxRetries = 3
	cfg.BreakerThreshold = 10 // keep the breaker out of this test
	c := NewClient("sales", ts.URL, sc.DB, cfg)
	c.SetTransport(&failFirst{n: 2})
	reg := obs.NewRegistry()
	c.SetMetrics(reg)

	var got []source.Notification
	var mu sync.Mutex
	c.OnUpdate(func(n source.Notification) {
		mu.Lock()
		got = append(got, n)
		mu.Unlock()
	})
	if err := c.Resend(1); err != nil {
		t.Fatalf("resend across transient failures: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Seq != 1 || got[0].Source != "sales" {
		t.Fatalf("delivered = %+v", got)
	}
	if v := c.mRetries.Value(); v != 2 {
		t.Fatalf("retries counter = %d, want 2", v)
	}
	if h := c.Health(); h.State != "healthy" || h.StalenessSec != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
}

// TestClientQuarantineAndRecovery: consecutive failures open the
// breaker (fetches fail fast with ErrQuarantined, health reports
// quarantined and growing staleness); after the cooldown a probe
// against a healed transport closes it again, completing a cycle.
func TestClientQuarantineAndRecovery(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")

	cfg := quickConfig()
	cfg.MaxRetries = -1 // no retries: each Resend is exactly one attempt
	c := NewClient("sales", ts.URL, sc.DB, cfg)
	faults := chaos.NewFaultyTransport(1, chaos.HTTPFaultConfig{Drop: 1.0}, nil)
	c.SetTransport(faults)
	c.OnUpdate(func(source.Notification) {})

	// Two failed attempts trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		if err := c.Resend(1); err == nil {
			t.Fatalf("attempt %d succeeded through a dropping transport", i)
		}
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker = %v after threshold failures, want open", got)
	}
	if err := c.Resend(1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined resend error = %v, want ErrQuarantined", err)
	}
	if !c.Quarantined() {
		t.Fatal("Quarantined() = false with the circuit open")
	}
	if h := c.Health(); h.State != "quarantined" {
		t.Fatalf("health = %+v, want quarantined", h)
	}
	if c.Staleness() <= 0 {
		t.Fatal("staleness did not grow while quarantined")
	}

	// Heal the network; after the cooldown the probe closes the circuit.
	faults.SetEnabled(false)
	time.Sleep(cfg.BreakerCooldown + 5*time.Millisecond)
	if err := c.Resend(1); err != nil {
		t.Fatalf("probe resend failed: %v", err)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", got)
	}
	if c.Breaker().Cycles() != 1 {
		t.Fatalf("cycles = %d, want 1", c.Breaker().Cycles())
	}
	if got := c.Staleness(); got != 0 {
		t.Fatalf("staleness = %v after recovery, want 0", got)
	}
}

// TestClientPollDeliversInOrder: the poll loop streams reports through
// the callback in sequence order and advances the cursor, including
// reports applied while the loop is already running (long-poll wake).
func TestClientPollDeliversInOrder(t *testing.T) {
	sc, src, ts := fixture(t)
	for i := 0; i < 3; i++ {
		sell(t, sc, src, fmt.Sprintf("item-%d", i), "Mary")
	}

	c := NewClient("sales", ts.URL, sc.DB, quickConfig())
	var mu sync.Mutex
	var seqs []uint64
	c.OnUpdate(func(n source.Notification) {
		mu.Lock()
		seqs = append(seqs, n.Seq)
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	waitFor(t, time.Second, func() bool { return c.Cursor() == 3 })
	sell(t, sc, src, "item-3", "John")
	waitFor(t, time.Second, func() bool { return c.Cursor() == 4 })

	mu.Lock()
	defer mu.Unlock()
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("delivery order = %v", seqs)
		}
	}
}

// TestClientHedgedResend: with every response delayed past HedgeDelay,
// Resend launches a hedge and still succeeds; the hedge counter
// records it.
func TestClientHedgedResend(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")

	cfg := quickConfig()
	cfg.HedgeDelay = 2 * time.Millisecond
	c := NewClient("sales", ts.URL, sc.DB, cfg)
	c.SetTransport(chaos.NewFaultyTransport(7, chaos.HTTPFaultConfig{
		Delay: 1.0, MaxDelay: 30 * time.Millisecond,
	}, nil))
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	var delivered int
	var mu sync.Mutex
	c.OnUpdate(func(source.Notification) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	if err := c.Resend(1); err != nil {
		t.Fatalf("hedged resend: %v", err)
	}
	mu.Lock()
	if delivered < 1 {
		t.Fatal("hedged resend delivered nothing")
	}
	mu.Unlock()
	if c.mHedges.Value() < 1 {
		t.Fatal("hedge counter did not record the hedged request")
	}
}

// TestClientRewindInCallbackSurvives is the documented recovery path of
// applyRemote: a consumer that rewinds inside the delivery callback
// (because its refresh failed) must see the same report again on a
// later poll — the cursor advance must not clobber the rewind, or the
// watermark wedges and the warehouse serves stale forever.
func TestClientRewindInCallbackSurvives(t *testing.T) {
	sc, src, ts := fixture(t)
	sell(t, sc, src, "TV set", "Mary")
	sell(t, sc, src, "VCR", "John")

	c := NewClient("sales", ts.URL, sc.DB, quickConfig())
	var mu sync.Mutex
	var applied []uint64
	failedOnce := false
	c.OnUpdate(func(n source.Notification) {
		mu.Lock()
		defer mu.Unlock()
		if n.Seq == 2 && !failedOnce {
			failedOnce = true
			c.Rewind(n.Seq - 1) // "refresh failed, redeliver later"
			return
		}
		if len(applied) > 0 && n.Seq <= applied[len(applied)-1] {
			return // duplicate redelivery, like applyRemote's dedup
		}
		applied = append(applied, n.Seq)
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Close()

	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(applied) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if applied[0] != 1 || applied[1] != 2 || !failedOnce {
		t.Fatalf("applied = %v (failedOnce=%v), want [1 2] with one rejected delivery", applied, failedOnce)
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestClientCancellationNotCountedAsFailure: a request canceled on
// purpose (shutdown, a hedged loser) is not a source fault — it must
// not charge the breaker or the failure/staleness state. Otherwise a
// canceled hedge completing while the breaker is half-open re-trips it.
func TestClientCancellationNotCountedAsFailure(t *testing.T) {
	sc, _, ts := fixture(t)
	cfg := quickConfig()
	cfg.MaxRetries = -1
	c := NewClient("sales", ts.URL, sc.DB, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.SetTransport(roundTripFunc(func(r *http.Request) (*http.Response, error) {
		cancel()
		<-r.Context().Done()
		return nil, r.Context().Err()
	}))
	if _, err := c.fetch(ctx, "/reports", 1, 0); err == nil {
		t.Fatal("fetch succeeded through a canceling transport")
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after a deliberate cancellation, want closed", got)
	}
	if h := c.Health(); h.State != "healthy" || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after cancellation = %+v, want healthy with 0 failures", h)
	}
}

// TestTrimmedHistoryGoes410AndWedges: once the retain cap drops old
// reports, both report endpoints answer 410 Gone for the trimmed range,
// and a client below it stops retrying and surfaces the wedge in
// Health instead of silently looping on gap rewinds.
func TestTrimmedHistoryGoes410AndWedges(t *testing.T) {
	sc, src, srv, ts := fixtureServer(t)
	srv.SetMaxRetain(2)
	for i := 0; i < 4; i++ {
		sell(t, sc, src, fmt.Sprintf("item-%d", i), "Mary")
	}
	if got := srv.Trimmed(); got != 2 {
		t.Fatalf("trimmed watermark = %d after cap enforcement, want 2", got)
	}

	status := func(path string) int {
		t.Helper()
		req, _ := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := status("/reports?from=1"); code != http.StatusGone {
		t.Fatalf("/reports below the log = %d, want 410", code)
	}
	if code := status("/resend?from=2"); code != http.StatusGone {
		t.Fatalf("/resend below the log = %d, want 410", code)
	}
	if code := status("/reports?from=3"); code != http.StatusOK {
		t.Fatalf("/reports at the retained suffix = %d, want 200", code)
	}

	cfg := quickConfig()
	cfg.MaxRetries = 3
	c := NewClient("sales", ts.URL, sc.DB, cfg)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	c.OnUpdate(func(source.Notification) {})
	err := c.Resend(1)
	if !errors.Is(err, ErrTrimmed) {
		t.Fatalf("resend below the log: err = %v, want ErrTrimmed", err)
	}
	if v := c.mRetries.Value(); v != 0 {
		t.Fatalf("retries = %d against a definitive 410, want 0", v)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after a 410 (transport works), want closed", got)
	}
	if h := c.Health(); h.State != "wedged" {
		t.Fatalf("health = %+v, want wedged", h)
	}
	// The retained suffix still serves, and a success clears the wedge.
	if err := c.Resend(3); err != nil {
		t.Fatalf("resend of the retained suffix: %v", err)
	}
	if h := c.Health(); h.State != "healthy" {
		t.Fatalf("health after a successful fetch = %+v, want healthy", h)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}
