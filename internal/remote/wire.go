// Package remote turns the source boundary of Figure 1 into a real
// network boundary. A SourceServer exposes one autonomous source's
// reporting channel over HTTP (report polling with long-poll, resend
// for gap resync, a health endpoint); a Client implements the
// source.Reporter interface over that wire with full fault handling:
// per-attempt deadlines, retries with exponential backoff and jitter
// (idempotent GETs only — replays are deduped by the integrator via
// sequence numbers), a per-source circuit breaker with half-open probe
// requests, optional hedged reads for resync, and health/quarantine
// state that feeds the warehouse's serve-stale degradation.
//
// The wire format deliberately rides the journal's update codec
// (journal.ToWireUpdate/FromWireUpdate over snapshot.WireRelation), so
// an update serializes identically whether it crosses a disk or a
// network boundary, and carries the same Seq the recovery protocol
// keys on. Everything is plain JSON over HTTP/1.1 — debuggable with
// curl, no third-party dependencies.
package remote

import (
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/journal"
	"dwcomplement/internal/snapshot"
	"dwcomplement/internal/source"
)

// WireNotification is one change report on the wire: the reporting
// source, its per-source sequence number, and the update's insert and
// delete sets in the shared relation codec.
type WireNotification struct {
	Source string                           `json:"source"`
	Seq    uint64                           `json:"seq"`
	Ins    map[string]snapshot.WireRelation `json:"ins,omitempty"`
	Del    map[string]snapshot.WireRelation `json:"del,omitempty"`
	// Lineage (both optional, so old and new peers interoperate): when
	// the report was applied at the source, and the W3C traceparent of
	// its sampled "source.apply" span — the propagation that lets the
	// warehouse join the source's trace and measure refresh lag.
	EmittedUnixNano int64  `json:"emittedUnixNano,omitempty"`
	Traceparent     string `json:"traceparent,omitempty"`
}

// ToWire serializes a notification for transport.
func ToWire(n source.Notification) WireNotification {
	ins, del := journal.ToWireUpdate(n.Update)
	return WireNotification{
		Source: n.Source, Seq: n.Seq, Ins: ins, Del: del,
		EmittedUnixNano: n.EmittedUnixNano, Traceparent: n.Traceparent,
	}
}

// FromWire restores a notification against the shared database schema.
func FromWire(w WireNotification, db *catalog.Database) (source.Notification, error) {
	u, err := journal.FromWireUpdate(db, w.Ins, w.Del)
	if err != nil {
		return source.Notification{}, err
	}
	return source.Notification{
		Source: w.Source, Seq: w.Seq, Update: u,
		EmittedUnixNano: w.EmittedUnixNano, Traceparent: w.Traceparent,
	}, nil
}

// ReportBatch is the response body of GET /reports and GET /resend: the
// source's name and latest sequence number, plus every retained report
// in the requested range, in ascending sequence order.
type ReportBatch struct {
	Source  string             `json:"source"`
	Seq     uint64             `json:"seq"`
	Reports []WireNotification `json:"reports"`
}

// healthBody is the response body of GET /healthz.
type healthBody struct {
	Source   string `json:"source"`
	Seq      uint64 `json:"seq"`
	Retained int    `json:"retained"`
	Sealed   bool   `json:"sealed"`
}
