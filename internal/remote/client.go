package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dwcomplement/internal/catalog"
	"dwcomplement/internal/obs"
	"dwcomplement/internal/source"
	"dwcomplement/internal/trace"
)

// ErrQuarantined reports that the client's circuit breaker is open: the
// source is quarantined and requests fail fast without touching the
// network until the cooldown admits a probe.
var ErrQuarantined = errors.New("remote: source quarantined (circuit open)")

// ErrTrimmed reports a 410 Gone from the source: the requested reports
// precede its retained log, so retrying cannot bring them back — the
// warehouse must be re-seeded from a snapshot. The client surfaces this
// as the "wedged" health state instead of looping on gap rewinds.
var ErrTrimmed = errors.New("remote: requested reports were trimmed from the source's retained log")

// Config tunes a Client's fault handling. The zero value gets sensible
// production defaults; soak tests shrink every duration.
type Config struct {
	// AttemptTimeout is the per-attempt deadline (default 2s). The
	// long-poll wait is added on top for /reports requests.
	AttemptTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried with
	// backoff before the fetch gives up (default 3). Only idempotent
	// GETs are ever issued, so retrying is always safe — duplicated
	// deliveries are deduped by the integrator via Seq.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// retries (defaults 10ms and 1s); each delay is jittered by a
	// seeded ±50%.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter (and hedge) schedule deterministic.
	Seed int64
	// BreakerThreshold consecutive failures open the circuit (default
	// 5); BreakerCooldown later a single probe is admitted (default
	// 500ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeDelay, when positive, arms hedged reads for Resend: if the
	// first request has not completed after this delay, a second
	// identical request races it and the first success wins.
	HedgeDelay time.Duration
	// PollWait is the long-poll wait the poll loop requests (default
	// 2s); PollInterval is the idle pause between unproductive rounds
	// (default 10ms).
	PollWait     time.Duration
	PollInterval time.Duration
}

// WithDefaults returns the config with every unset knob at its
// production default — exported so the replication stream client
// (internal/replica), which shares this fault-handling machinery, can
// normalize a Config the same way NewClient does.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.PollWait <= 0 {
		c.PollWait = 2 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	return c
}

// Health is a point-in-time view of a remote source's client-side
// state, surfaced by dwserve's /readyz.
type Health struct {
	Source              string    `json:"source"`
	State               string    `json:"state"` // healthy | degraded | quarantined | wedged
	Breaker             string    `json:"breaker"`
	ConsecutiveFailures int       `json:"consecutiveFailures"`
	LastSuccess         time.Time `json:"lastSuccess"`
	LastError           string    `json:"lastError,omitempty"`
	StalenessSec        float64   `json:"stalenessSec"`
	Cursor              uint64    `json:"cursor"`
}

// Client consumes one remote source's reporting channel: it long-polls
// GET /reports, delivers each report through the registered callback,
// and re-requests ranges on demand via GET /resend. It implements
// source.Reporter, so an integrator wired to a Client cannot tell it is
// talking across a network — except through the fault-handling state
// the Client additionally exposes (breaker, health, staleness).
type Client struct {
	name    string
	base    string
	db      *catalog.Database
	cfg     Config
	httpc   *http.Client
	breaker *Breaker
	started time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	mu           sync.Mutex
	notify       func(source.Notification)
	cursor       uint64 // highest Seq fetched by the poll loop
	lastSuccess  time.Time
	lastErr      error
	consecFails  int
	lastAttempts int  // attempts the last successful fetch needed
	lastHedged   bool // whether the last successful fetch was hedged
	tracer       *trace.Tracer
	runCtx       context.Context
	cancel       context.CancelFunc
	wg           sync.WaitGroup

	mRetries *obs.Counter
	mHedges  *obs.Counter
	mPolls   *obs.Counter
}

var _ source.Reporter = (*Client)(nil)

// NewClient builds a client for the source served at baseURL (e.g.
// "http://host:9101"), decoding reports against db.
func NewClient(name, baseURL string, db *catalog.Database, cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		name:    name,
		base:    baseURL,
		db:      db,
		cfg:     cfg,
		httpc:   &http.Client{},
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		started: time.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetTransport swaps the underlying HTTP transport (tests inject a
// chaos.FaultyTransport here).
func (c *Client) SetTransport(rt http.RoundTripper) { c.httpc.Transport = rt }

// Name returns the remote source's name.
func (c *Client) Name() string { return c.name }

// Breaker exposes the client's circuit breaker.
func (c *Client) Breaker() *Breaker { return c.breaker }

// SetTracer attaches a tracer: reports fetched with a sampled
// traceparent are delivered under a "remote.attempt" span that records
// the fetch effort (retries, hedging) and re-parents the report's
// lineage so downstream spans nest under the client-side hop. Call
// before Start.
func (c *Client) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// OnUpdate registers the delivery callback, exactly like
// Source.OnUpdate. Register before Start.
func (c *Client) OnUpdate(fn func(source.Notification)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notify = fn
}

// Cursor returns the highest sequence number fetched so far.
func (c *Client) Cursor() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursor
}

// Rewind moves the poll cursor back to `to`, so the next poll re-fetches
// everything after it. The consumer calls this when it had to discard a
// delivered report (e.g. a failed refresh) and needs redelivery.
func (c *Client) Rewind(to uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if to < c.cursor {
		c.cursor = to
	}
}

// Start launches the poll loop; it stops when ctx is done or Close is
// called.
func (c *Client) Start(ctx context.Context) {
	c.mu.Lock()
	if c.cancel != nil {
		c.mu.Unlock()
		return // already running
	}
	rctx, cancel := context.WithCancel(ctx)
	c.runCtx, c.cancel = rctx, cancel
	c.wg.Add(1)
	c.mu.Unlock()
	go c.loop(rctx)
}

// Close stops the poll loop and waits for it to exit.
func (c *Client) Close() {
	c.mu.Lock()
	cancel := c.cancel
	c.cancel = nil
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	c.wg.Wait()
}

// loop is the report pump: long-poll from the cursor, deliver, repeat.
// Failures (including quarantine) pace themselves via idleDelay.
func (c *Client) loop(ctx context.Context) {
	defer c.wg.Done()
	for ctx.Err() == nil {
		inc(c.mPolls)
		c.mu.Lock()
		c.lastHedged = false // polls are never hedged
		c.mu.Unlock()
		batch, err := c.fetch(ctx, "/reports", c.Cursor()+1, c.cfg.PollWait)
		if err != nil {
			c.sleep(ctx, c.idleDelay())
			continue
		}
		if !c.deliver(batch) {
			c.sleep(ctx, c.cfg.PollInterval)
		}
	}
}

// idleDelay paces the poll loop after a failed round: a quarantined
// source waits out (a fraction of) the breaker cooldown instead of
// hammering the fast-fail path, and a wedged client (history trimmed —
// no retry can help) slows down the same way instead of re-asking at
// full poll speed.
func (c *Client) idleDelay() time.Duration {
	c.mu.Lock()
	wedged := errors.Is(c.lastErr, ErrTrimmed)
	c.mu.Unlock()
	if wedged || c.breaker.State() != BreakerClosed {
		d := c.cfg.BreakerCooldown / 2
		if d < c.cfg.PollInterval {
			d = c.cfg.PollInterval
		}
		return d
	}
	return c.cfg.PollInterval
}

// Resend re-requests reports with Seq ≥ from through the resync
// endpoint and delivers them — the Reporter face of gap recovery. With
// HedgeDelay configured the read is hedged: a second request races the
// first after the delay and the first success wins.
func (c *Client) Resend(from uint64) error {
	ctx := c.currentCtx()
	batch, err := c.fetchHedged(ctx, "/resend", from)
	if err != nil {
		return fmt.Errorf("remote: resend %s from %d: %w", c.name, from, err)
	}
	c.deliver(batch)
	return nil
}

// currentCtx is the running poll context, or Background before Start.
func (c *Client) currentCtx() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runCtx != nil && c.runCtx.Err() == nil {
		return c.runCtx
	}
	return context.Background()
}

// deliver pushes a batch through the callback in order and reports
// whether the cursor advanced. The cursor moves to each report's Seq
// BEFORE its callback runs, so a Rewind issued inside the callback (the
// consumer discarding a report after a failed refresh or sequence gap)
// survives and the next poll re-fetches the unapplied report; delivery
// of the rest of the batch stops at a rewind, since every later report
// would only be re-fetched anyway.
func (c *Client) deliver(batch []source.Notification) bool {
	if len(batch) == 0 {
		return false
	}
	c.mu.Lock()
	fn := c.notify
	before := c.cursor
	tracer := c.tracer
	attempts, hedged := c.lastAttempts, c.lastHedged
	c.mu.Unlock()
	for _, n := range batch {
		c.mu.Lock()
		if n.Seq > c.cursor {
			c.cursor = n.Seq
		}
		c.mu.Unlock()
		if fn != nil {
			c.deliverOne(tracer, n, attempts, hedged, fn)
		}
		c.mu.Lock()
		rewound := c.cursor < n.Seq
		c.mu.Unlock()
		if rewound {
			break
		}
	}
	return c.Cursor() > before
}

// deliverOne runs the callback for one report, under a "remote.attempt"
// span when the report carries a sampled traceparent. The span is
// re-parented into the report before delivery, so everything the
// consumer does (integration, journaling, refresh) nests under this
// client-side hop in the trace.
func (c *Client) deliverOne(tracer *trace.Tracer, n source.Notification, attempts int, hedged bool, fn func(source.Notification)) {
	_, sp := tracer.StartRemote(context.Background(), n.Traceparent, "remote.attempt")
	defer sp.End()
	sp.SetAttr("source", c.name)
	sp.SetAttrInt("seq", int64(n.Seq))
	sp.SetAttrInt("fetchAttempts", int64(attempts))
	if hedged {
		sp.SetAttr("hedged", "true")
	}
	if sp.Recording() {
		n.Traceparent = sp.Context().Traceparent()
	}
	fn(n)
}

// fetch GETs path?from=N with per-attempt deadlines, retrying with
// exponential backoff and jitter up to MaxRetries times. Every attempt
// first consults the breaker; a quarantined source fails fast with
// ErrQuarantined.
func (c *Client) fetch(ctx context.Context, path string, from uint64, wait time.Duration) ([]source.Notification, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !c.breaker.Allow() {
			c.noteFailure(ErrQuarantined)
			return nil, ErrQuarantined
		}
		batch, err := c.get(ctx, path, from, wait)
		if err == nil {
			c.breaker.Success()
			c.noteSuccess()
			c.mu.Lock()
			c.lastAttempts = attempt + 1
			c.mu.Unlock()
			return batch, nil
		}
		if ctx.Err() != nil {
			// Deliberate cancellation — shutdown, or the losing half of a
			// hedged read canceled after the winner returned — is not a
			// source fault: release any half-open probe slot without
			// charging the breaker or the staleness state.
			c.breaker.Abandon()
			return nil, err
		}
		if errors.Is(err, ErrTrimmed) {
			// 410 is a definitive answer over a working transport: record
			// the contact on the breaker (a probe closes the circuit) but
			// keep the client visibly wedged via lastErr, and don't retry
			// — the trimmed history will not come back.
			c.breaker.Success()
			c.noteFailure(err)
			return nil, err
		}
		c.breaker.Failure()
		c.noteFailure(err)
		lastErr = err
		if attempt >= c.cfg.MaxRetries || ctx.Err() != nil {
			return nil, lastErr
		}
		inc(c.mRetries)
		c.sleep(ctx, c.backoff(attempt))
	}
}

// fetchHedged is fetch with hedged reads: when the first request is
// still in flight after HedgeDelay, an identical second request is
// launched and the first success wins. Safe because every request is an
// idempotent GET and deliveries are deduped downstream by Seq.
func (c *Client) fetchHedged(ctx context.Context, path string, from uint64) ([]source.Notification, error) {
	c.mu.Lock()
	c.lastHedged = false
	c.mu.Unlock()
	if c.cfg.HedgeDelay <= 0 {
		return c.fetch(ctx, path, from, 0)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		batch []source.Notification
		err   error
	}
	results := make(chan result, 2)
	launch := func() {
		b, e := c.fetch(hctx, path, from, 0)
		results <- result{b, e}
	}
	go launch()
	outstanding, hedged := 1, false
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.batch, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				inc(c.mHedges)
				c.mu.Lock()
				c.lastHedged = true
				c.mu.Unlock()
				outstanding++
				go launch()
			}
		}
	}
}

// get performs one attempt against path with the per-attempt deadline.
func (c *Client) get(ctx context.Context, path string, from uint64, wait time.Duration) ([]source.Notification, error) {
	q := url.Values{}
	q.Set("from", strconv.FormatUint(from, 10))
	if wait > 0 {
		q.Set("wait", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout+wait)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, c.base+path+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("remote: %s%s: %s: %w", c.base, path, strings.TrimSpace(string(body)), ErrTrimmed)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("remote: %s%s: status %d: %s", c.base, path, resp.StatusCode, string(body))
	}
	var rb ReportBatch
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		return nil, fmt.Errorf("remote: %s%s: decoding response: %w", c.base, path, err)
	}
	batch := make([]source.Notification, 0, len(rb.Reports))
	for _, wn := range rb.Reports {
		n, err := FromWire(wn, c.db)
		if err != nil {
			return nil, err
		}
		batch = append(batch, n)
	}
	return batch, nil
}

// backoff returns the jittered exponential delay before retry #attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64() // ±50%
	c.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits for d or until ctx is done.
func (c *Client) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (c *Client) noteSuccess() {
	c.mu.Lock()
	c.lastSuccess = time.Now()
	c.lastErr = nil
	c.consecFails = 0
	c.mu.Unlock()
}

func (c *Client) noteFailure(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.consecFails++
	c.mu.Unlock()
}

// Quarantined reports whether the breaker has the source quarantined
// (open or probing half-open).
func (c *Client) Quarantined() bool { return c.breaker.State() != BreakerClosed }

// Staleness is how long the source's report stream has been stale: zero
// while the last contact succeeded, else the age of the last success
// (or of the client itself if it never succeeded).
func (c *Client) Staleness() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastErr == nil {
		return 0
	}
	since := c.lastSuccess
	if since.IsZero() {
		since = c.started
	}
	return time.Since(since)
}

// Health returns the client's degradation view: healthy (last contact
// succeeded), degraded (recent failures, circuit still closed),
// quarantined (circuit open; requests fail fast until a probe passes),
// or wedged (the source trimmed history below our cursor — no retry
// can recover; the warehouse must be re-seeded from a snapshot).
func (c *Client) Health() Health {
	c.mu.Lock()
	lastErr := c.lastErr
	h := Health{
		Source:              c.name,
		Breaker:             c.breaker.State().String(),
		ConsecutiveFailures: c.consecFails,
		LastSuccess:         c.lastSuccess,
		Cursor:              c.cursor,
	}
	c.mu.Unlock()
	if lastErr != nil {
		h.LastError = lastErr.Error()
	}
	switch {
	case errors.Is(lastErr, ErrTrimmed):
		h.State = "wedged"
	case c.breaker.State() != BreakerClosed:
		h.State = "quarantined"
	case lastErr != nil:
		h.State = "degraded"
	default:
		h.State = "healthy"
	}
	h.StalenessSec = c.Staleness().Seconds()
	return h
}

// SetMetrics registers the client's fault-handling instruments with an
// obs registry, labeled by source: retry and hedge counters, poll
// rounds, a breaker-state gauge (0 closed, 1 half-open, 2 open), and a
// per-source staleness gauge.
func (c *Client) SetMetrics(reg *obs.Registry) {
	labels := obs.Labels{"source": c.name}
	c.mu.Lock()
	c.mRetries = reg.Counter("dw_remote_retries_total",
		"Remote report fetch attempts retried after a failure.", labels)
	c.mHedges = reg.Counter("dw_remote_hedges_total",
		"Hedged resync reads launched because the first request was slow.", labels)
	c.mPolls = reg.Counter("dw_remote_poll_rounds_total",
		"Report poll rounds issued against the remote source.", labels)
	c.mu.Unlock()
	reg.GaugeFunc("dw_remote_breaker_state",
		"Circuit breaker position per source: 0 closed, 1 half-open, 2 open.", labels,
		func() float64 { return float64(c.breaker.State()) })
	reg.GaugeFunc("dw_remote_source_staleness_seconds",
		"Seconds since the source's report stream was last fetched successfully; 0 while healthy.", labels,
		func() float64 { return c.Staleness().Seconds() })
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}
