package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"dwcomplement/internal/source"
)

// maxLongPoll caps how long one /reports request may be held open.
const maxLongPoll = 30 * time.Second

// defaultMaxBatch bounds one response's report count; a client that is
// far behind pages through the backlog with successive requests.
const defaultMaxBatch = 256

// SourceServer exposes one autonomous source's reporting channel over
// HTTP — the wire form of Figure 1's solid arrow. It registers itself
// as the source's notification callback, retains an ordered report log,
// and serves it to polling integrator clients:
//
//	GET /healthz            source name, latest seq, retained reports
//	GET /reports?from=N     reports with Seq ≥ N; &wait=ms long-polls
//	GET /resend?from=N      immediate re-delivery for gap resync
//
// The server never exposes a query endpoint: a sealed source stays
// sealed across the network boundary by construction.
type SourceServer struct {
	src *source.Source

	mu        sync.Mutex
	cond      *sync.Cond
	log       []source.Notification // retained reports, ascending Seq
	trimmed   uint64                // highest Seq dropped from the log (0 = none)
	maxRetain int                   // retained-report cap (0 = unbounded)
	maxBatch  int
}

// NewSourceServer wraps src, registering itself as the notification
// callback and backfilling reports applied before the wrap.
func NewSourceServer(src *source.Source) *SourceServer {
	s := &SourceServer{src: src, maxBatch: defaultMaxBatch}
	s.cond = sync.NewCond(&s.mu)
	src.OnUpdate(s.Notify)
	// Backfill: re-deliver the retained history into our log so a
	// server attached after traffic started can still serve it.
	_ = src.Resend(1)
	return s
}

// Source returns the wrapped source.
func (s *SourceServer) Source() *source.Source { return s.src }

// Notify appends one report to the retained log (idempotently, in
// sequence order — Resend-driven backfill may deliver out of order) and
// enforces the retain cap.
func (s *SourceServer) Notify(n source.Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].Seq >= n.Seq })
	if i < len(s.log) && s.log[i].Seq == n.Seq {
		return // duplicate
	}
	s.log = append(s.log, source.Notification{})
	copy(s.log[i+1:], s.log[i:])
	s.log[i] = n
	s.enforceCapLocked()
	s.cond.Broadcast()
}

// TrimLog drops retained reports with Seq ≤ upTo — the wire-side twin
// of Source.TrimHistory, typically driven by the same checkpointed
// watermark. Requests for trimmed ranges answer 410 Gone afterwards.
func (s *SourceServer) TrimLog(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.log) && s.log[i].Seq <= upTo {
		i++
	}
	if upTo > s.trimmed {
		s.trimmed = upTo
	}
	s.log = append([]source.Notification(nil), s.log[i:]...)
}

// SetMaxRetain caps the retained log at n reports: once a new report
// would exceed the cap the oldest are dropped, exactly as if TrimLog
// had been called at their sequence numbers. Zero (the default)
// retains everything; prefer TrimLog from a consumer-acknowledged
// watermark when one is available.
func (s *SourceServer) SetMaxRetain(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxRetain = n
	s.enforceCapLocked()
}

// Trimmed returns the highest sequence number dropped from the
// retained log (0 when nothing was trimmed). dwsource mirrors it into
// the wrapped Source's own history on a schedule, so neither retained
// copy grows without bound.
func (s *SourceServer) Trimmed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trimmed
}

// enforceCapLocked drops the oldest reports past maxRetain, advancing
// the trimmed watermark. Caller holds mu.
func (s *SourceServer) enforceCapLocked() {
	if s.maxRetain <= 0 || len(s.log) <= s.maxRetain {
		return
	}
	drop := len(s.log) - s.maxRetain
	if seq := s.log[drop-1].Seq; seq > s.trimmed {
		s.trimmed = seq
	}
	s.log = append([]source.Notification(nil), s.log[drop:]...)
}

// trimmedFor reports whether reports from `from` can no longer be
// served because older history was dropped from the retained log. The
// source's seq is read before taking mu: Notify arrives under the
// source's own lock, so the reverse order would invert lock acquisition.
func (s *SourceServer) trimmedFor(from uint64) bool {
	seq := s.src.Seq()
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < from {
		return false // nothing at or past from exists yet
	}
	if from <= s.trimmed {
		return true
	}
	if len(s.log) > 0 {
		return s.log[0].Seq > from
	}
	return true // the report exists but nothing is retained
}

// Handler returns the HTTP routing table.
func (s *SourceServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /reports", s.handleReports)
	mux.HandleFunc("GET /resend", s.handleResend)
	return mux
}

func (s *SourceServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	retained := len(s.log)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, healthBody{
		Source:   s.src.Name(),
		Seq:      s.src.Seq(),
		Retained: retained,
		Sealed:   s.src.Sealed(),
	})
}

// handleReports serves reports with Seq ≥ from. With wait > 0 and no
// such report retained yet, the request blocks until one arrives, the
// wait elapses, or the client goes away — the long-poll that gives the
// pull-based wire push-like report latency. A from below the retained
// log answers 410 Gone like /resend: silently serving only the later
// suffix would leave a behind client rewinding on the gap forever.
func (s *SourceServer) handleReports(w http.ResponseWriter, r *http.Request) {
	from, err := seqParam(r, "from", 1)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	wait, err := waitParam(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if wait > 0 {
		s.awaitReport(r.Context(), from, wait)
	}
	// Checked after the wait: trimming only ever advances, so a range
	// trimmed mid-poll is still caught here.
	if s.trimmedFor(from) {
		writeJSONError(w, http.StatusGone,
			fmt.Errorf("remote: %s cannot serve reports from seq %d: history trimmed", s.src.Name(), from))
		return
	}
	s.respondBatch(w, from)
}

// handleResend serves the resync path: an immediate batch from the
// retained log. Asking for reports older than the log answers 410 Gone
// — the wire form of "history trimmed".
func (s *SourceServer) handleResend(w http.ResponseWriter, r *http.Request) {
	from, err := seqParam(r, "from", 1)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if s.trimmedFor(from) {
		writeJSONError(w, http.StatusGone,
			fmt.Errorf("remote: %s cannot resend from seq %d: history trimmed", s.src.Name(), from))
		return
	}
	s.respondBatch(w, from)
}

// awaitReport blocks until a report with Seq ≥ from is retained, the
// wait elapses, or ctx is done.
func (s *SourceServer) awaitReport(ctx context.Context, from uint64, wait time.Duration) {
	deadline := time.Now().Add(wait)
	wake := time.AfterFunc(wait, s.cond.Broadcast)
	defer wake.Stop()
	stop := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.hasLocked(from) && time.Now().Before(deadline) && ctx.Err() == nil {
		s.cond.Wait()
	}
}

// hasLocked reports whether a report with Seq ≥ from is retained.
func (s *SourceServer) hasLocked(from uint64) bool {
	return len(s.log) > 0 && s.log[len(s.log)-1].Seq >= from
}

// respondBatch writes the (possibly empty) batch of retained reports
// with Seq ≥ from, capped at maxBatch.
func (s *SourceServer) respondBatch(w http.ResponseWriter, from uint64) {
	s.mu.Lock()
	i := sort.Search(len(s.log), func(i int) bool { return s.log[i].Seq >= from })
	batch := make([]WireNotification, 0, min(len(s.log)-i, s.maxBatch))
	for ; i < len(s.log) && len(batch) < s.maxBatch; i++ {
		batch = append(batch, ToWire(s.log[i]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ReportBatch{
		Source:  s.src.Name(),
		Seq:     s.src.Seq(),
		Reports: batch,
	})
}

// seqParam parses an unsigned sequence query parameter.
func seqParam(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("remote: bad %s parameter %q", name, raw)
	}
	return v, nil
}

// waitParam parses the long-poll wait in milliseconds, capped.
func waitParam(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("remote: bad wait parameter %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxLongPoll {
		d = maxLongPoll
	}
	return d, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
