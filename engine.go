package dwc

import (
	"context"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
)

// Instrumentation types of the evaluation engine.
type (
	// EvalStats aggregates the operator counters (tuples scanned, index
	// probes and hits, indexes built, tuples emitted) and wall time of one
	// evaluation, plus a bounded per-operator breakdown in Ops.
	EvalStats = algebra.EvalStats
	// OpStat is the counter record of a single operator node.
	OpStat = algebra.OpStat
)

// Sentinel errors surfaced by the evaluation and maintenance paths; match
// them with errors.Is.
var (
	// ErrUnknownRelation reports a reference to a relation the evaluated
	// state does not contain.
	ErrUnknownRelation = algebra.ErrUnknownRelation
	// ErrSchemaMismatch reports set operations over unequal attribute sets.
	ErrSchemaMismatch = relation.ErrSchemaMismatch
)

// AnswerContext answers a source query from the warehouse with
// cancellation and instrumentation: the context is checked at every
// operator boundary, and the returned EvalStats reports operator counters
// and wall time. Equivalent to w.AnswerContext.
func AnswerContext(ctx context.Context, w *Warehouse, q Expr) (*Relation, *EvalStats, error) {
	return w.AnswerContext(ctx, q)
}

// EvalExprContext is EvalExpr with cancellation and instrumentation. A
// canceled context aborts evaluation at the next operator boundary with an
// error wrapping the context's error; the stats are returned even on
// failure.
func EvalExprContext(ctx context.Context, e Expr, st algebra.State) (*Relation, *EvalStats, error) {
	ec := algebra.NewEvalContext(ctx)
	start := time.Now()
	r, err := algebra.EvalCtx(ec, e, st)
	stats := ec.Stats()
	stats.Wall = time.Since(start)
	return r, &stats, err
}

// Option configures complement computation (core.Options) functionally.
// The zero configuration is Proposition 2.2: no integrity constraints.
type Option func(*core.Options)

// WithKeys enables the key-based covers of Theorem 2.2.
func WithKeys(on bool) Option {
	return func(o *core.Options) { o.UseKeys = on }
}

// WithINDs admits IND-derived pseudo-views into the covers (requires
// WithKeys: pseudo-views must contain the target's key).
func WithINDs(on bool) Option {
	return func(o *core.Options) { o.UseINDs = on }
}

// WithEmptyDetection runs the static always-empty analysis; proved-empty
// complements need no storage or maintenance.
func WithEmptyDetection(on bool) Option {
	return func(o *core.Options) { o.DetectEmpty = on }
}

// WithNamePrefix sets the complement relation name prefix (default "C_").
func WithNamePrefix(prefix string) Option {
	return func(o *core.Options) { o.NamePrefix = prefix }
}

// NewOptions builds complement-computation options from functional
// options. With no arguments it equals Proposition22(); WithKeys, WithINDs
// and WithEmptyDetection together reproduce Theorem22().
func NewOptions(opts ...Option) Options {
	o := core.Options{}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
