package dwc

import (
	"context"
	"time"

	"dwcomplement/internal/algebra"
	"dwcomplement/internal/core"
	"dwcomplement/internal/relation"
)

// Instrumentation types of the evaluation engine.
type (
	// EvalStats aggregates the operator counters (tuples scanned, index
	// probes and hits, indexes built, tuples emitted) and wall time of one
	// evaluation, plus a bounded per-operator breakdown in Ops.
	EvalStats = algebra.EvalStats
	// OpStat is the counter record of a single operator node.
	OpStat = algebra.OpStat
	// PlanNode is one operator node of an executed plan tree — the
	// EXPLAIN ANALYZE view. EvalStats.Plan holds one tree per top-level
	// evaluation; per-node counters sum to the flat totals.
	PlanNode = algebra.PlanNode
)

// RenderPlan renders executed plan trees as an indented text tree. With
// withTiming false the output is deterministic for a fixed state and
// expression; with true each node shows inclusive/exclusive wall time.
func RenderPlan(roots []*PlanNode, withTiming bool) string {
	return algebra.RenderPlan(roots, withTiming)
}

// ExprTree renders an expression as an indented operator tree — the
// static EXPLAIN view of a query, before execution.
func ExprTree(e Expr) string { return algebra.ExprTree(e) }

// Explain translates the source query q against w's view definitions
// (Theorem 3.1) and returns the translated expression with its static
// operator-tree rendering, without executing anything.
func Explain(w *Warehouse, q Expr) (Expr, string, error) {
	tq, err := w.TranslateQuery(q)
	if err != nil {
		return nil, "", err
	}
	return tq, algebra.ExprTree(tq), nil
}

// ExplainAnalyze answers q from the warehouse under instrumentation and
// returns the result, the executed per-operator plan tree (stats.Plan),
// and its text rendering with timings. Equivalent to AnswerContext plus
// RenderPlan.
func ExplainAnalyze(ctx context.Context, w *Warehouse, q Expr) (*Relation, *EvalStats, string, error) {
	r, stats, err := w.AnswerContext(ctx, q)
	if err != nil {
		return nil, stats, "", err
	}
	return r, stats, algebra.RenderPlan(stats.Plan, true), nil
}

// Sentinel errors surfaced by the evaluation and maintenance paths; match
// them with errors.Is.
var (
	// ErrUnknownRelation reports a reference to a relation the evaluated
	// state does not contain.
	ErrUnknownRelation = algebra.ErrUnknownRelation
	// ErrSchemaMismatch reports set operations over unequal attribute sets.
	ErrSchemaMismatch = relation.ErrSchemaMismatch
	// ErrBudgetExceeded reports an evaluation aborted because it scanned
	// or emitted more rows than the Budget on its context allows.
	ErrBudgetExceeded = algebra.ErrBudgetExceeded
)

// Budget bounds the physical work (rows scanned / rows emitted) of one
// evaluation; attach it to a context with WithBudget and every Answer,
// EvalExpr or ExplainAnalyze call on that context enforces it.
type Budget = algebra.Budget

// WithBudget returns a context carrying b; evaluations on the returned
// context abort with ErrBudgetExceeded once they exceed it.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return algebra.WithBudget(ctx, b)
}

// Answer answers a source query from the warehouse: q is translated
// against the view definitions (Theorem 3.1) and the translated query is
// evaluated over warehouse relations only. This is the primary query
// entry point of the facade — context-first, instrumented, and returning
// a Rows batch cursor over the columnar result. The context is checked at
// every operator boundary; a canceled context aborts evaluation with an
// error wrapping the context's error.
func Answer(ctx context.Context, w *Warehouse, q Expr) (*Rows, error) {
	r, stats, err := w.AnswerContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return newRows(r, stats), nil
}

// EvalExpr evaluates an expression against any state (a *State, a
// *Warehouse, or a plain relation map) under cancellation and
// instrumentation, returning a Rows batch cursor over the result. Like
// Answer, the context is checked at every operator boundary.
func EvalExpr(ctx context.Context, e Expr, st algebra.State) (*Rows, error) {
	ec := algebra.NewEvalContext(ctx)
	start := time.Now()
	r, err := algebra.EvalCtx(ec, e, st)
	if err != nil {
		return nil, err
	}
	stats := ec.Stats()
	stats.Wall = time.Since(start)
	return newRows(r, &stats), nil
}

// Refresh incrementally applies a source update to the warehouse through
// the maintainer — warehouse-only, never querying the sources (Theorem
// 4.1). This is the primary maintenance entry point of the facade; the
// context is checked between propagation steps and at every operator
// boundary inside them, and a canceled refresh aborts before any delta is
// applied, leaving the warehouse untouched.
func Refresh(ctx context.Context, m *Maintainer, w *Warehouse, u *Update) (RefreshStats, error) {
	return m.RefreshContext(ctx, w, u)
}

// AnswerContext answers a source query from the warehouse and returns the
// bare relation and stats.
//
// Deprecated: Answer is the primary form; its Rows cursor carries the
// same relation and stats plus columnar batch iteration.
func AnswerContext(ctx context.Context, w *Warehouse, q Expr) (*Relation, *EvalStats, error) {
	return w.AnswerContext(ctx, q)
}

// EvalExprContext evaluates an expression and returns the bare relation
// and stats; unlike EvalExpr it reports the partial stats of a failed
// evaluation.
//
// Deprecated: EvalExpr is the primary form; its Rows cursor carries the
// same relation and stats plus columnar batch iteration.
func EvalExprContext(ctx context.Context, e Expr, st algebra.State) (*Relation, *EvalStats, error) {
	ec := algebra.NewEvalContext(ctx)
	start := time.Now()
	r, err := algebra.EvalCtx(ec, e, st)
	stats := ec.Stats()
	stats.Wall = time.Since(start)
	return r, &stats, err
}

// Option configures complement computation (core.Options) functionally.
// The zero configuration is Proposition 2.2: no integrity constraints.
type Option func(*core.Options)

// WithKeys enables the key-based covers of Theorem 2.2.
func WithKeys(on bool) Option {
	return func(o *core.Options) { o.UseKeys = on }
}

// WithINDs admits IND-derived pseudo-views into the covers (requires
// WithKeys: pseudo-views must contain the target's key).
func WithINDs(on bool) Option {
	return func(o *core.Options) { o.UseINDs = on }
}

// WithEmptyDetection runs the static always-empty analysis; proved-empty
// complements need no storage or maintenance.
func WithEmptyDetection(on bool) Option {
	return func(o *core.Options) { o.DetectEmpty = on }
}

// WithNamePrefix sets the complement relation name prefix (default "C_").
func WithNamePrefix(prefix string) Option {
	return func(o *core.Options) { o.NamePrefix = prefix }
}

// NewOptions builds complement-computation options from functional
// options. With no arguments it equals Proposition22(); WithKeys, WithINDs
// and WithEmptyDetection together reproduce Theorem22().
func NewOptions(opts ...Option) Options {
	o := core.Options{}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
