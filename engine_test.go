package dwc_test

import (
	"context"
	"errors"
	"testing"

	dwc "dwcomplement"
)

// figure1Warehouse builds the paper's Figure 1 warehouse via the public
// facade.
func figure1Warehouse(t *testing.T, opts dwc.Options) *dwc.Warehouse {
	t.Helper()
	db := dwc.NewDatabase().
		MustAddSchema(dwc.NewSchema("Sale", "item:string", "clerk:string")).
		MustAddSchema(dwc.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	views := dwc.MustNewViewSet(db,
		dwc.NewView("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))
	st := db.NewState().
		MustInsert("Sale", dwc.Str("TV set"), dwc.Str("Mary")).
		MustInsert("Sale", dwc.Str("VCR"), dwc.Str("Mary")).
		MustInsert("Sale", dwc.Str("PC"), dwc.Str("John")).
		MustInsert("Emp", dwc.Str("Mary"), dwc.Int(23)).
		MustInsert("Emp", dwc.Str("John"), dwc.Int(31)).
		MustInsert("Emp", dwc.Str("Paula"), dwc.Int(32))
	w, err := dwc.BuildWarehouse(db, views, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewOptionsPresets(t *testing.T) {
	if got := dwc.NewOptions(); got != dwc.Proposition22() {
		t.Errorf("NewOptions() = %+v, want Proposition22", got)
	}
	got := dwc.NewOptions(dwc.WithKeys(true), dwc.WithINDs(true), dwc.WithEmptyDetection(true))
	if got != dwc.Theorem22() {
		t.Errorf("NewOptions(keys, inds, empty) = %+v, want Theorem22", got)
	}
	if got := dwc.NewOptions(dwc.WithNamePrefix("AUX_")); got.NamePrefix != "AUX_" {
		t.Errorf("WithNamePrefix not applied: %+v", got)
	}
	// Options built functionally must drive the pipeline like the presets.
	w := figure1Warehouse(t, dwc.NewOptions(dwc.WithKeys(true)))
	if w.Size() == 0 {
		t.Error("warehouse empty")
	}
}

func TestAnswerContextStats(t *testing.T) {
	w := figure1Warehouse(t, dwc.Theorem22())
	q := dwc.MustParseExpr("pi{item, age}(Sale join Emp)")
	ans, stats, err := dwc.AnswerContext(context.Background(), w, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 3 {
		t.Errorf("answer = %v", ans)
	}
	if stats == nil {
		t.Fatal("no stats")
	}
	if stats.IndexHits == 0 {
		t.Errorf("IndexHits = 0, want > 0 (stats = %+v)", stats)
	}
	if stats.Emitted == 0 || stats.Wall <= 0 || len(stats.Ops) == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestEvalExprContextStats(t *testing.T) {
	w := figure1Warehouse(t, dwc.Theorem22())
	r, stats, err := dwc.EvalExprContext(context.Background(), dwc.MustParseExpr("Sold join Sold"), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || stats.Scanned == 0 {
		t.Errorf("r = %v, stats = %+v", r, stats)
	}
}

func TestAnswerContextCancellation(t *testing.T) {
	w := figure1Warehouse(t, dwc.Theorem22())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := w.AnswerContext(ctx, dwc.MustParseExpr("Sale join Emp"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if stats == nil {
		t.Error("stats must be returned even on cancellation")
	}
}

func TestRefreshContextCancellationLeavesWarehouseUntouched(t *testing.T) {
	w := figure1Warehouse(t, dwc.Theorem22())
	before := w.CloneState()
	m := dwc.NewMaintainer(w.Complement())
	u := dwc.NewUpdate().MustInsert("Sale", w.Complement().Database(), dwc.Str("Radio"), dwc.Str("Paula"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RefreshContext(ctx, w, u); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	for name, r := range before {
		cur, ok := w.Relation(name)
		if !ok || !cur.Equal(r) {
			t.Errorf("relation %s changed by a canceled refresh", name)
		}
	}

	// The same refresh with a live context must go through and report
	// wall time and evaluation counters.
	stats, err := m.RefreshContext(context.Background(), w, u)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() == 0 || stats.Wall <= 0 || stats.Eval == nil {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSentinelErrors(t *testing.T) {
	db := dwc.NewDatabase().
		MustAddSchema(dwc.NewSchema("R", "a:int")).
		MustAddSchema(dwc.NewSchema("S", "b:int"))
	st := db.NewState()

	_, err := dwc.EvalExpr(context.Background(), dwc.MustParseExpr("Nope"), st)
	if !errors.Is(err, dwc.ErrUnknownRelation) {
		t.Errorf("unknown relation: err = %v", err)
	}
	_, _, err = dwc.EvalExprContext(context.Background(), dwc.MustParseExpr("Nope"), st)
	if !errors.Is(err, dwc.ErrUnknownRelation) {
		t.Errorf("unknown relation via context API: err = %v", err)
	}

	_, err = dwc.EvalExpr(context.Background(), dwc.MustParseExpr("R union S"), st)
	if !errors.Is(err, dwc.ErrSchemaMismatch) {
		t.Errorf("schema mismatch: err = %v", err)
	}

	// The warehouse query path surfaces the same sentinels.
	w := figure1Warehouse(t, dwc.Theorem22())
	if _, err := w.Answer(dwc.MustParseExpr("Missing")); !errors.Is(err, dwc.ErrUnknownRelation) {
		t.Errorf("warehouse unknown relation: err = %v", err)
	}
}
