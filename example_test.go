package dwc_test

import (
	"fmt"

	dwc "dwcomplement"
)

// ExampleComputeComplement reproduces Example 1.1: the complement of the
// Sold = Sale ⋈ Emp warehouse.
func ExampleComputeComplement() {
	db := dwc.NewDatabase()
	db.MustAddSchema(dwc.NewSchema("Sale", "item:string", "clerk:string"))
	db.MustAddSchema(dwc.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	views := dwc.MustNewViewSet(db,
		dwc.NewView("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))

	comp, _ := dwc.ComputeComplement(db, views, dwc.Proposition22())
	for _, e := range comp.Entries() {
		fmt.Printf("%s = %s\n", e.Name, e.Def)
		fmt.Printf("%s = %s\n", e.Base, e.Inverse)
	}
	// Output:
	// C_Sale = Sale ∖ π{clerk,item}(Sale ⋈ Emp)
	// Sale = C_Sale ∪ π{clerk,item}(Sold)
	// C_Emp = Emp ∖ π{age,clerk}(Sale ⋈ Emp)
	// Emp = C_Emp ∪ π{age,clerk}(Sold)
}

// ExampleWarehouse_Answer shows query independence (Example 1.2): a query
// over the sources answered from the warehouse alone.
func ExampleWarehouse_Answer() {
	db := dwc.NewDatabase()
	db.MustAddSchema(dwc.NewSchema("Sale", "item:string", "clerk:string"))
	db.MustAddSchema(dwc.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	views := dwc.MustNewViewSet(db,
		dwc.NewView("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))
	st := db.NewState().
		MustInsert("Sale", dwc.Str("TV set"), dwc.Str("Mary")).
		MustInsert("Emp", dwc.Str("Mary"), dwc.Int(23)).
		MustInsert("Emp", dwc.Str("Paula"), dwc.Int(32))

	w, _ := dwc.BuildWarehouse(db, views, dwc.Proposition22(), st)
	ans, _ := w.Answer(dwc.MustParseExpr("pi{clerk}(Sale) union pi{clerk}(Emp)"))
	fmt.Print(ans)
	// Output:
	// clerk
	// -----
	// Mary
	// Paula
	// (2 tuples)
}

// ExampleMaintainer_Refresh shows update independence (Theorem 4.1): the
// paper's insertion maintained incrementally without source access.
func ExampleMaintainer_Refresh() {
	db := dwc.NewDatabase()
	db.MustAddSchema(dwc.NewSchema("Sale", "item:string", "clerk:string"))
	db.MustAddSchema(dwc.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	views := dwc.MustNewViewSet(db,
		dwc.NewView("Sold", []string{"item", "clerk", "age"}, nil, "Sale", "Emp"))
	st := db.NewState().
		MustInsert("Emp", dwc.Str("Paula"), dwc.Int(32))

	w, _ := dwc.BuildWarehouse(db, views, dwc.Proposition22(), st)
	u := dwc.NewUpdate().MustInsert("Sale", db, dwc.Str("Computer"), dwc.Str("Paula"))
	dwc.NewMaintainer(w.Complement()).Refresh(w, u)

	sold, _ := w.Relation("Sold")
	fmt.Print(sold)
	// Output:
	// item      clerk  age
	// --------  -----  ---
	// Computer  Paula  32
	// (1 tuple)
}
