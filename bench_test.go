// Benchmarks, one per experiment of the reproduction (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark measures the hot operation of its
// experiment; the correctness side of every experiment lives in the test
// suites and in cmd/dwbench, which also prints the paper-vs-measured
// tables.
package dwc_test

import (
	"fmt"
	"testing"

	"dwcomplement/internal/aggregate"
	"dwcomplement/internal/algebra"
	"dwcomplement/internal/catalog"
	"dwcomplement/internal/core"
	"dwcomplement/internal/maintain"
	"dwcomplement/internal/relation"
	"dwcomplement/internal/star"
	"dwcomplement/internal/view"
	"dwcomplement/internal/warehouse"
	"dwcomplement/internal/workload"
)

func mustWarehouse(b *testing.B, sc workload.Scenario, opts core.Options, st *catalog.State) (*warehouse.Warehouse, *core.Complement) {
	b.Helper()
	comp, err := core.Compute(sc.DB, sc.Views, opts)
	if err != nil {
		b.Fatal(err)
	}
	w := warehouse.New(comp)
	if err := w.Initialize(st); err != nil {
		b.Fatal(err)
	}
	return w, comp
}

// BenchmarkE1Figure1Maintenance measures the paper's driving update: one
// tuple inserted into Sale, maintained warehouse-only (Figure 1, Ex 1.1).
func BenchmarkE1Figure1Maintenance(b *testing.B) {
	sc := workload.Figure1(false)
	st := workload.Figure1State(sc.DB)
	w, comp := mustWarehouse(b, sc, core.Proposition22(), st)
	snapshot := w.CloneState()
	m := maintain.NewMaintainer(comp)
	u := catalog.NewUpdate().MustInsert("Sale", sc.DB,
		relation.String_("Computer"), relation.String_("Paula"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.LoadState(cloneMapState(snapshot))
		if _, err := m.Refresh(w, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2QueryTranslation measures the rewriting Q ↦ Q̂ (Ex 1.2).
func BenchmarkE2QueryTranslation(b *testing.B) {
	sc := workload.Figure1(false)
	w, _ := mustWarehouse(b, sc, core.Proposition22(), workload.Figure1State(sc.DB))
	q := algebra.NewUnion(
		algebra.NewProject(algebra.NewBase("Sale"), "clerk"),
		algebra.NewProject(algebra.NewBase("Emp"), "clerk"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.TranslateQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3InjectivityCheck measures one W(d) materialization plus
// fingerprinting — the unit of the Proposition 2.1 experiment.
func BenchmarkE3InjectivityCheck(b *testing.B) {
	sc := workload.Figure1(true)
	comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
	if err != nil {
		b.Fatal(err)
	}
	st := workload.NewGen(sc.DB, 1).State(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := comp.MaterializeWarehouse(st)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range ws {
			_ = r.Fingerprint()
		}
	}
}

// BenchmarkE4ComplementRST measures complement computation for Example
// 2.1's R ⋈ S ⋈ T warehouse, with and without V2 = S.
func BenchmarkE4ComplementRST(b *testing.B) {
	for _, withV2 := range []bool{false, true} {
		sc := workload.Example21(withV2)
		b.Run(fmt.Sprintf("withV2=%v", withV2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(sc.DB, sc.Views, core.Proposition22()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5NonMinimalPSJ measures evaluating Prop 2.2's C_R against the
// paper's smaller C'_R on the Example 2.2 schema.
func BenchmarkE5NonMinimalPSJ(b *testing.B) {
	sc := workload.Example22()
	comp, err := core.Compute(sc.DB, sc.Views, core.Proposition22())
	if err != nil {
		b.Fatal(err)
	}
	eR, _ := comp.Entry("R")
	v1 := algebra.NewProject(algebra.NewBase("R"), "A", "B")
	v2 := algebra.NewProject(algebra.NewBase("R"), "B", "C")
	v3 := algebra.NewProject(algebra.NewSelect(algebra.NewBase("R"),
		algebra.AttrEqConst("B", relation.Int(0))), "A", "B", "C")
	cPrime := algebra.NewDiff(
		algebra.NewJoin(algebra.NewBase("R"),
			algebra.NewProject(algebra.NewDiff(algebra.NewJoin(v1, v2), algebra.NewBase("R")), "A", "B")),
		v3)
	st := workload.NewGen(sc.DB, 2).State(60)
	for name, def := range map[string]algebra.Expr{"Prop22": eR.Def, "PaperCPrime": cPrime} {
		def := def
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.Eval(def, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6ConstraintComplement measures Theorem 2.2 computation —
// covers, pseudo-views, emptiness analysis — on Example 2.3.
func BenchmarkE6ConstraintComplement(b *testing.B) {
	sc := workload.Example23(workload.E23AllKeysAndINDs, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(sc.DB, sc.Views, core.Theorem22()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7RefIntegrityEmpty measures the emptiness-detecting complement
// computation of Example 2.4.
func BenchmarkE7RefIntegrityEmpty(b *testing.B) {
	sc := workload.Figure1(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
		if err != nil {
			b.Fatal(err)
		}
		if len(comp.StoredEntries()) != 1 {
			b.Fatal("emptiness proof lost")
		}
	}
}

// BenchmarkE8QueryIndependence measures answering a translated query at
// the warehouse vs evaluating the original at the source (Theorem 3.1).
func BenchmarkE8QueryIndependence(b *testing.B) {
	sc := workload.Figure1(true)
	st := workload.NewGen(sc.DB, 3).State(200)
	w, _ := mustWarehouse(b, sc, core.Theorem22(), st)
	q := algebra.NewProject(
		algebra.NewSelect(
			algebra.NewJoin(algebra.NewBase("Sale"), algebra.NewBase("Emp")),
			algebra.AttrCmpConst("age", algebra.OpLt, relation.Int(40))),
		"item", "clerk")
	qHat, err := w.TranslateQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("AtSource", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(q, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AtWarehouse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(qHat, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9UpdateIndependence measures a full incremental refresh round
// under a mixed random update (Theorem 4.1).
func BenchmarkE9UpdateIndependence(b *testing.B) {
	sc := workload.Figure1(false)
	gen := workload.NewGen(sc.DB, 4)
	st := gen.State(100)
	w, comp := mustWarehouse(b, sc, core.Proposition22(), st)
	snapshot := w.CloneState()
	u := gen.Update(st, 5, 3)
	m := maintain.NewMaintainer(comp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.LoadState(cloneMapState(snapshot))
		if _, err := m.Refresh(w, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10SigmaViewUpdates measures the complement-free σ-view
// translator (Section 4, closing observation).
func BenchmarkE10SigmaViewUpdates(b *testing.B) {
	db := catalog.NewDatabase().
		MustAddSchema(relation.NewSchema("Emp", "clerk:string", "age:int").WithKey("clerk"))
	vs := view.MustNewSet(db, view.NewPSJ("Old", []string{"clerk", "age"},
		algebra.AttrCmpConst("age", algebra.OpGt, relation.Int(30)), "Emp"))
	m, err := maintain.NewSigmaMaintainer(db, vs)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGen(db, 5)
	st := gen.State(100)
	w, err := m.Materialize(st)
	if err != nil {
		b.Fatal(err)
	}
	u := gen.Update(st, 5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Refresh(w, u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11StarSchema measures one warehouse-only refresh of the
// union-integrated fact table (Section 5).
func BenchmarkE11StarSchema(b *testing.B) {
	for _, slim := range []bool{false, true} {
		b.Run(fmt.Sprintf("slim=%v", slim), func(b *testing.B) {
			biz, err := star.NewBusiness([]string{"paris", "tokyo", "austin"}, slim)
			if err != nil {
				b.Fatal(err)
			}
			st, err := biz.Populate(100, 500, 6)
			if err != nil {
				b.Fatal(err)
			}
			w, err := biz.BuildWarehouse(st)
			if err != nil {
				b.Fatal(err)
			}
			cur := st.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				u := biz.RandomOrderUpdate(cur, 5, 3, int64(i))
				b.StartTimer()
				if err := w.Refresh(u); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := u.Apply(cur); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE12IncrementalVsRecompute is the crossover sweep: refresh cost
// by route, base size and update size.
func BenchmarkE12IncrementalVsRecompute(b *testing.B) {
	sc := workload.Figure1(true)
	comp, err := core.Compute(sc.DB, sc.Views, core.Theorem22())
	if err != nil {
		b.Fatal(err)
	}
	for _, baseSize := range []int{100, 400} {
		gen := workload.NewGen(sc.DB, 8)
		gen.Domain = baseSize
		st := gen.State(baseSize)
		w := warehouse.New(comp)
		if err := w.Initialize(st); err != nil {
			b.Fatal(err)
		}
		snapshot := w.CloneState()
		for _, deltaSize := range []int{1, 20} {
			u := gen.Update(st, deltaSize, deltaSize/2)
			m := maintain.NewMaintainer(comp)
			b.Run(fmt.Sprintf("Incremental/base=%d/delta=%d", baseSize, u.Size()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.LoadState(cloneMapState(snapshot))
					if _, err := m.Refresh(w, u); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("Recompute/base=%d/delta=%d", baseSize, u.Size()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.LoadState(cloneMapState(snapshot))
					if err := m.RefreshByRecompute(w, u); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE13ComplementScaling measures Compute over growing chain
// schemata (cover enumeration is the combinatorial part).
func BenchmarkE13ComplementScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		db, views := workload.ChainSchema(n)
		b.Run(fmt.Sprintf("relations=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(db, views, core.Theorem22()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14ComplementSizeSweep measures the stored-size evaluation that
// powers the storage-fraction experiment.
func BenchmarkE14ComplementSizeSweep(b *testing.B) {
	sc := workload.Example23(workload.E23AllKeysAndINDs, true)
	st := workload.NewGen(sc.DB, 9).State(100)
	for _, opts := range []struct {
		name string
		o    core.Options
	}{
		{"Prop22", core.Proposition22()},
		{"Thm22", core.Theorem22()},
	} {
		comp, err := core.Compute(sc.DB, sc.Views, opts.o)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(opts.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := comp.StoredSize(st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15Aggregates measures maintaining four summary tables from one
// fact-table refresh (the Section 5 OLAP layer).
func BenchmarkE15Aggregates(b *testing.B) {
	biz, err := star.NewBusiness([]string{"paris", "tokyo", "austin"}, false)
	if err != nil {
		b.Fatal(err)
	}
	st, err := biz.Populate(100, 400, 12)
	if err != nil {
		b.Fatal(err)
	}
	w, err := biz.BuildWarehouse(st)
	if err != nil {
		b.Fatal(err)
	}
	views := []*aggregate.View{
		aggregate.New("QtyPerSite", "Orders", []string{"loc"}, aggregate.Sum, "qty"),
		aggregate.New("OrdersPerSite", "Orders", []string{"loc"}, aggregate.Count, "qty"),
		aggregate.New("MaxQtyPerSite", "Orders", []string{"loc"}, aggregate.Max, "qty"),
		aggregate.New("QtyPerCustomer", "Orders", []string{"ckey"}, aggregate.Sum, "qty"),
	}
	orders, _ := w.Relation("Orders")
	for _, v := range views {
		if err := v.Initialize(orders); err != nil {
			b.Fatal(err)
		}
		w.AddConsumer(v)
	}
	cur := st.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := biz.RandomOrderUpdate(cur, 4, 2, int64(i))
		if err := w.Refresh(u); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := u.Apply(cur); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkJoin measures the engine's hot join path on the 10k-tuple
// workload: repeated joins of a small probe side against a large,
// unchanging build side — the access pattern of query serving, where
// translated queries join small selected slices against big materialized
// warehouse relations. The sub-benchmarks cover the natural join, the
// semi-join (the restriction primitive of incremental maintenance) and a
// bulk 10k ⋈ 10k join.
func BenchmarkJoin(b *testing.B) {
	big := relation.New("b", "c")
	for i := 0; i < 10000; i++ {
		big.InsertValues(relation.Int(int64(i)), relation.Int(int64(i%97)))
	}
	small := relation.New("a", "b")
	for i := 0; i < 16; i++ {
		small.InsertValues(relation.Int(int64(i)), relation.Int(int64(i*613)))
	}
	probe := relation.New("b")
	for i := 0; i < 16; i++ {
		probe.InsertValues(relation.Int(int64(i * 613)))
	}
	other := relation.New("b", "d")
	for i := 0; i < 10000; i++ {
		other.InsertValues(relation.Int(int64(i)), relation.Int(int64(i%89)))
	}
	b.Run("NaturalJoinProbe10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := relation.NaturalJoin(small, big); out.Len() != 16 {
				b.Fatalf("join size %d", out.Len())
			}
		}
	})
	b.Run("SemiJoinProbe10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := relation.SemiJoin(big, probe); out.Len() != 16 {
				b.Fatalf("semijoin size %d", out.Len())
			}
		}
	})
	b.Run("NaturalJoinBulk10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := relation.NaturalJoin(big, other); out.Len() != 10000 {
				b.Fatalf("join size %d", out.Len())
			}
		}
	})
}

// BenchmarkRefresh measures one incremental warehouse refresh on the
// 10k-tuple join workload: Figure 1's schema scaled to 10k tuples per
// base relation, with small mixed updates applied cumulatively (the state
// evolves across iterations, as in a live deployment).
func BenchmarkRefresh(b *testing.B) {
	sc := workload.Figure1(false)
	gen := workload.NewGen(sc.DB, 11)
	gen.Domain = 10000
	st := gen.State(10000)
	w, comp := mustWarehouse(b, sc, core.Proposition22(), st)
	m := maintain.NewMaintainer(comp)
	cur := st.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u := gen.Update(cur, 2, 1)
		b.StartTimer()
		if _, err := m.Refresh(w, u); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := u.Apply(cur); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func cloneMapState(ms algebra.MapState) algebra.MapState {
	out := make(algebra.MapState, len(ms))
	for name, r := range ms {
		out[name] = r.Clone()
	}
	return out
}
