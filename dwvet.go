package dwc

import (
	"dwcomplement/internal/core"
	"dwcomplement/internal/parse"
	"dwcomplement/internal/vet"
)

// Static verification (DESIGN.md §10). Vet decides, from schemata,
// constraints, and view definitions alone, whether a warehouse
// configuration is sound: PSJ view well-formedness, IND acyclicity
// (with the cycle path), per-relation key-cover analysis (Theorem 2.2),
// and the query-independence verdict (Theorem 3.1).
type (
	// VetDiagnostic is one finding about a warehouse definition.
	VetDiagnostic = vet.Diagnostic
	// VetSeverity grades a finding: VetInfo, VetWarning, or VetError.
	VetSeverity = vet.Severity
	// DiagSpec is a .dw specification parsed in diagnostic (lax) mode:
	// the surviving Spec plus every problem found along the way.
	DiagSpec = parse.DiagSpec
)

// Severity levels of VetDiagnostic.
const (
	VetInfo    = vet.Info
	VetWarning = vet.Warning
	VetError   = vet.Error
)

var (
	// Vet statically verifies a database + view set pair.
	Vet = vet.Check
	// VetSpec statically verifies a diagnostic-mode parsed specification.
	VetSpec = vet.CheckSpec
	// VetHasErrors reports whether any diagnostic is an error — the
	// condition under which dwserve refuses a config.
	VetHasErrors = vet.HasErrors
	// RenderVet formats diagnostics one per line.
	RenderVet = vet.Render
	// ParseSpecDiag parses a .dw specification in diagnostic mode,
	// collecting semantic problems instead of stopping at the first.
	ParseSpecDiag = parse.SpecTextDiag
)

// VetSpecAt parses src in diagnostic mode (load paths resolved relative
// to dir) and returns every finding. Grammar errors abort with err; all
// semantic problems come back as diagnostics.
func VetSpecAt(src, dir string) ([]VetDiagnostic, error) {
	ds, err := parse.SpecTextDiag(src, dir)
	if err != nil {
		return nil, err
	}
	return vet.CheckSpec(ds, core.Theorem22()), nil
}
